//! End-to-end tests of partition-granular memory management: enforcement
//! evicts individual LRU partitions (roughly the overshoot, never whole
//! tables while warm partitions remain), pinned partitions are spared,
//! scans and streams over a partially evicted table transparently rebuild
//! exactly the missing partitions from lineage with byte-identical results,
//! and a session over its memory quota loses its *own* LRU partitions
//! before anyone else's.

use shark_common::{row, DataType, Schema};
use shark_server::{EvictionEvent, MemstoreManager, ServerConfig, SharkServer};
use shark_sql::TableMeta;

const PARTITIONS: usize = 8;
const ROWS_PER_PARTITION: usize = 50;

fn register_tables(server: &SharkServer, names: &[&str]) {
    for name in names {
        let schema = Schema::from_pairs(&[
            ("k", DataType::Int),
            ("grp", DataType::Str),
            ("amount", DataType::Float),
        ]);
        server.register_table(
            TableMeta::new(name, schema, PARTITIONS, move |p| {
                (0..ROWS_PER_PARTITION)
                    .map(|i| {
                        row![
                            (p * ROWS_PER_PARTITION + i) as i64,
                            ["alpha", "beta", "gamma"][i % 3],
                            (p * ROWS_PER_PARTITION + i) as f64 * 0.5
                        ]
                    })
                    .collect()
            })
            .with_cache(PARTITIONS)
            .with_row_count_hint((PARTITIONS * ROWS_PER_PARTITION) as u64),
        );
    }
}

/// Evict `count` partitions of a table directly through its memtable,
/// simulating earlier budget pressure.
fn evict_some(server: &SharkServer, table: &str, partitions: &[usize]) {
    let mem = server.catalog().get(table).unwrap().cached.clone().unwrap();
    for &p in partitions {
        assert!(mem.evict_partition(p) > 0, "partition {p} was not resident");
    }
}

#[test]
fn partially_evicted_table_returns_byte_identical_results() {
    let server = SharkServer::new(ServerConfig::default());
    register_tables(&server, &["t0"]);
    server.load_table("t0").unwrap();
    let session = server.session();

    let queries = [
        "SELECT k, grp, amount FROM t0",
        "SELECT k, amount FROM t0 WHERE k < 300",
        "SELECT grp, COUNT(*), SUM(amount) FROM t0 GROUP BY grp ORDER BY grp",
        "SELECT k FROM t0 ORDER BY k DESC LIMIT 7",
    ];
    // Reference run with everything resident.
    let resident: Vec<_> = queries
        .iter()
        .map(|q| session.sql(q).unwrap().result.rows)
        .collect();

    let mem = server.catalog().get("t0").unwrap().cached.clone().unwrap();
    for (i, query) in queries.iter().enumerate() {
        // Knock out a cold stripe of partitions before each query.
        evict_some(&server, "t0", &[1, 4, 6]);
        assert_eq!(mem.loaded_partitions(), PARTITIONS - 3);

        let blocking = session.sql(query).unwrap().result.rows;
        assert_eq!(blocking, resident[i], "blocking query: {query}");

        evict_some(&server, "t0", &[1, 4, 6]);
        let streamed = session.sql_stream(query).unwrap().fetch_all().unwrap();
        assert_eq!(streamed, resident[i], "streamed query: {query}");
    }
}

#[test]
fn scans_rebuild_only_the_missing_partitions() {
    let server = SharkServer::new(ServerConfig::default());
    register_tables(&server, &["t0"]);
    server.load_table("t0").unwrap();
    let session = server.session();
    let mem = server.catalog().get("t0").unwrap().cached.clone().unwrap();

    evict_some(&server, "t0", &[2, 5]);
    assert_eq!(mem.loaded_partitions(), PARTITIONS - 2);
    let before = mem.rebuilds();

    let result = session.sql("SELECT COUNT(*) FROM t0").unwrap();
    assert_eq!(
        result.result.rows[0].get_int(0).unwrap(),
        (PARTITIONS * ROWS_PER_PARTITION) as i64
    );
    // Exactly the two missing partitions were rebuilt from lineage; the six
    // resident ones were served from the memstore untouched.
    assert_eq!(mem.rebuilds() - before, 2);
    assert_eq!(mem.loaded_partitions(), PARTITIONS);
    assert_eq!(server.report().partition_rebuilds, mem.rebuilds());

    // The query observed the recompute through the serving metrics too.
    assert_eq!(result.metrics.recomputed_tables, 0); // direct memtable evict
}

#[test]
fn pruning_still_works_over_evicted_partitions_saving_their_rebuilds() {
    // Statistics survive policy evictions, so a selective query over a
    // partially evicted table prunes evicted partitions instead of paying
    // their lineage recompute.
    let server = SharkServer::new(ServerConfig::default());
    register_tables(&server, &["t0"]);
    server.load_table("t0").unwrap();
    let session = server.session();
    let mem = server.catalog().get("t0").unwrap().cached.clone().unwrap();

    // k ranges per partition: p holds [p*50, p*50+49]. Partition 7 holds
    // 350..=399. Evict partitions 6 and 7; query only partition 7's range.
    evict_some(&server, "t0", &[6, 7]);
    let before = mem.rebuilds();
    let result = session
        .sql("SELECT COUNT(*) FROM t0 WHERE k >= 350")
        .unwrap();
    assert_eq!(
        result.result.rows[0].get_int(0).unwrap(),
        ROWS_PER_PARTITION as i64
    );
    // Partition 7 was rebuilt (its rows were needed); partition 6 was
    // pruned by its retained statistics and stayed evicted.
    assert_eq!(mem.rebuilds() - before, 1);
    assert!(!mem.is_loaded(6));
    assert!(mem.is_loaded(7));
}

#[test]
fn enforcement_evicts_roughly_the_overshoot_via_lru_partitions() {
    // Size the working set first.
    let sizing = SharkServer::new(ServerConfig::default());
    register_tables(&sizing, &["t0", "t1"]);
    sizing.load_table("t0").unwrap();
    sizing.load_table("t1").unwrap();
    let full = sizing.catalog().memstore_bytes();
    let per_partition = full / (2 * PARTITIONS as u64);

    // Budget holds everything but ~two partitions.
    let need = per_partition * 2;
    let server = SharkServer::new(ServerConfig::default().with_memory_budget(full - need));
    register_tables(&server, &["t0", "t1"]);
    // t0 is loaded first (colder), t1 second: the overshoot comes out of
    // t0's LRU partitions only.
    server.load_table("t0").unwrap();
    server.load_table("t1").unwrap();

    let report = server.report();
    assert!(report.evictions > 0);
    assert!(
        report.evicted_partitions >= 2 && report.evicted_partitions <= 4,
        "needed ~2 partitions, evicted {}",
        report.evicted_partitions
    );
    assert!(
        report.evicted_bytes >= need && report.evicted_bytes <= need + 2 * per_partition,
        "needed {need} bytes, evicted {}",
        report.evicted_bytes
    );
    assert!(report.partial_evictions > 0, "no partial eviction recorded");
    // Both tables keep most partitions resident — nothing was dumped
    // wholesale.
    for name in ["t0", "t1"] {
        let loaded = server
            .catalog()
            .get(name)
            .unwrap()
            .cached
            .clone()
            .unwrap()
            .loaded_partitions();
        assert!(
            loaded >= PARTITIONS - 4,
            "{name} kept only {loaded}/{PARTITIONS} partitions"
        );
    }
    assert!(server.resident_bytes() <= full - need);
}

#[test]
fn eviction_events_record_the_partitions_that_went() {
    // Manager-level: an enforcement pass needing one partition's worth of
    // bytes evicts exactly the LRU partition and says which one.
    let catalog = std::sync::Arc::new(shark_sql::Catalog::new());
    let schema = Schema::from_pairs(&[("x", DataType::Int)]);
    catalog.register(
        TableMeta::new("t", schema, 4, |p| {
            (0..100).map(|i| row![(p * 100 + i) as i64]).collect()
        })
        .with_cache(2),
    );
    let table = catalog.get("t").unwrap();
    let mem = table.cached.clone().unwrap();
    for p in 0..4 {
        let rows = (table.base)(p);
        mem.put(
            p,
            std::sync::Arc::new(shark_columnar::ColumnarPartition::from_rows(
                &table.schema,
                &rows,
            )),
        );
    }
    // Touch 0 and 3 so 1 is the coldest after 2.
    mem.touch(1);
    mem.touch(2);
    mem.touch(0);
    mem.touch(3);
    let total = mem.memory_bytes();
    let one = mem.partition_bytes(1);
    let manager = MemstoreManager::new(total - one);
    let rdd_cache = shark_rdd::CacheManager::new();
    let events = manager.enforce(&catalog, &rdd_cache);
    assert_eq!(events.len(), 1);
    match &events[0] {
        EvictionEvent::Table {
            name,
            partitions,
            bytes,
            whole_table,
        } => {
            assert_eq!(name, "t");
            assert_eq!(partitions, &vec![1], "the LRU partition goes first");
            assert_eq!(*bytes, one);
            assert!(!whole_table);
        }
        other => panic!("unexpected event {other:?}"),
    }
}

#[test]
fn session_over_quota_loses_its_own_partitions_before_others() {
    // Size one table's footprint.
    let sizing = SharkServer::new(ServerConfig::default());
    register_tables(&sizing, &["t0"]);
    sizing.load_table("t0").unwrap();
    let table_bytes = sizing.catalog().memstore_bytes();

    // Quota: 1.5 tables per session. Global budget unlimited.
    let server = SharkServer::new(ServerConfig::default().with_session_quota(table_bytes * 3 / 2));
    register_tables(&server, &["mine_a", "mine_b", "theirs"]);

    let victim = server.session();
    let bystander = server.session();
    // The bystander loads its table first; it must never be touched.
    bystander.load_table("theirs").unwrap();
    assert_eq!(bystander.resident_bytes(), table_bytes);

    // The victim loads two tables — one over its quota: its own LRU
    // partitions (from mine_a, loaded first) are evicted down to quota.
    victim.load_table("mine_a").unwrap();
    victim.load_table("mine_b").unwrap();
    assert!(
        victim.resident_bytes() <= table_bytes * 3 / 2,
        "victim still over quota: {} > {}",
        victim.resident_bytes(),
        table_bytes * 3 / 2
    );

    let catalog = server.catalog();
    let loaded = |name: &str| {
        catalog
            .get(name)
            .unwrap()
            .cached
            .clone()
            .unwrap()
            .loaded_partitions()
    };
    // The bystander's table is fully resident; the victim's freshly loaded
    // table too; the victim's older table paid the quota.
    assert_eq!(loaded("theirs"), PARTITIONS, "bystander must be untouched");
    assert_eq!(loaded("mine_b"), PARTITIONS);
    assert!(loaded("mine_a") < PARTITIONS);

    let report = server.report();
    assert_eq!(report.quota_hits, 1);
    assert!(report.quota_evicted_partitions > 0);
    assert_eq!(report.session_quota_bytes, table_bytes * 3 / 2);

    // A query that reloads the evicted partitions pushes the victim over
    // again: quota enforcement runs on query completion too, and the
    // serving metrics record it.
    let result = victim.sql("SELECT COUNT(*) FROM mine_a").unwrap();
    assert_eq!(
        result.result.rows[0].get_int(0).unwrap(),
        (PARTITIONS * ROWS_PER_PARTITION) as i64
    );
    assert!(
        result.metrics.quota_evictions > 0,
        "quota eviction on completion not recorded: {:?}",
        result.metrics
    );
    assert!(victim.resident_bytes() <= table_bytes * 3 / 2);
    assert!(server.report().quota_hits >= 2);
}

#[test]
fn query_only_tenant_is_charged_for_faulted_in_tables() {
    // A session that never calls load_table still fills the memstore
    // through lazy scan loads; the quota layer must charge and bound it.
    let sizing = SharkServer::new(ServerConfig::default());
    register_tables(&sizing, &["t0"]);
    sizing.load_table("t0").unwrap();
    let table_bytes = sizing.catalog().memstore_bytes();

    let server = SharkServer::new(ServerConfig::default().with_session_quota(table_bytes / 2));
    register_tables(&server, &["t0"]);
    let session = server.session();
    // The scan faults in every partition of t0 (correct results first) —
    // then quota enforcement on completion evicts the session back down.
    let result = session.sql("SELECT COUNT(*) FROM t0").unwrap();
    assert_eq!(
        result.result.rows[0].get_int(0).unwrap(),
        (PARTITIONS * ROWS_PER_PARTITION) as i64
    );
    assert!(
        result.metrics.quota_evictions > 0,
        "fault-in was not charged: {:?}",
        result.metrics
    );
    assert!(
        session.resident_bytes() <= table_bytes / 2,
        "query-only tenant exceeds its quota: {} > {}",
        session.resident_bytes(),
        table_bytes / 2
    );
    assert!(server.report().quota_hits >= 1);

    // The streamed path charges fault-ins too.
    let rows = session
        .sql_stream("SELECT k FROM t0")
        .unwrap()
        .fetch_all()
        .unwrap();
    assert_eq!(rows.len(), PARTITIONS * ROWS_PER_PARTITION);
    assert!(session.resident_bytes() <= table_bytes / 2);
}

#[test]
fn partition_rebuild_counter_survives_drop_table() {
    let server = SharkServer::new(ServerConfig::default());
    register_tables(&server, &["t0", "keeper"]);
    server.load_table("t0").unwrap();
    server.load_table("keeper").unwrap();
    let session = server.session();

    evict_some(&server, "t0", &[0, 1, 2]);
    session.sql("SELECT COUNT(*) FROM t0").unwrap();
    let before_drop = server.report().partition_rebuilds;
    assert_eq!(before_drop, 3);

    // Dropping the table retires its rebuild count instead of losing it:
    // the cumulative metric never decreases.
    session.sql("DROP TABLE t0").unwrap();
    assert_eq!(server.report().partition_rebuilds, before_drop);

    evict_some(&server, "keeper", &[5]);
    session.sql("SELECT COUNT(*) FROM keeper").unwrap();
    assert_eq!(server.report().partition_rebuilds, before_drop + 1);
}

#[test]
fn pinned_partitions_survive_enforcement_server_side() {
    let sizing = SharkServer::new(ServerConfig::default());
    register_tables(&sizing, &["t0"]);
    sizing.load_table("t0").unwrap();
    let table_bytes = sizing.catalog().memstore_bytes();
    let per_partition = table_bytes / PARTITIONS as u64;

    // Budget forces roughly half the table out.
    let server = SharkServer::new(ServerConfig::default().with_memory_budget(table_bytes / 2));
    register_tables(&server, &["t0"]);
    let mem = server.catalog().get("t0").unwrap().cached.clone().unwrap();
    // Load without enforcement by filling the memtable directly, then pin
    // the two coldest partitions before enforcing.
    let table = server.catalog().get("t0").unwrap();
    for p in 0..PARTITIONS {
        let rows = (table.base)(p);
        mem.put(
            p,
            std::sync::Arc::new(shark_columnar::ColumnarPartition::from_rows(
                &table.schema,
                &rows,
            )),
        );
    }
    let manager = MemstoreManager::new(table_bytes / 2);
    manager.pin_partition("t0", 0);
    manager.pin_partition("t0", 1);
    let events = manager.enforce(server.catalog(), server.context().cache());
    assert!(!events.is_empty());
    for event in &events {
        match event {
            EvictionEvent::Table { partitions, .. } => {
                assert!(
                    !partitions.contains(&0) && !partitions.contains(&1),
                    "pinned partitions were evicted: {partitions:?}"
                );
            }
            other => panic!("unexpected event {other:?}"),
        }
    }
    assert!(mem.is_loaded(0), "pinned partition 0 must stay resident");
    assert!(mem.is_loaded(1), "pinned partition 1 must stay resident");
    assert!(mem.memory_bytes() <= table_bytes / 2 + per_partition);
}
