//! Byte-equality grid for the vectorized batch execution path: every query
//! shape (filter, projection, group-by, top-k) over every table state
//! (fully cached, partially evicted, RLE/dictionary-heavy) must return
//! byte-identical rows whether it runs through the vectorized kernels or
//! the row-at-a-time fallback, and whether it is fetched blocking or
//! streamed.

use shark_common::{row, DataType, Row, Schema};
use shark_server::{ServerConfig, SessionHandle, SharkServer};
use shark_sql::{ExecConfig, TableMeta};

const PARTITIONS: usize = 6;
const ROWS_PER_PARTITION: usize = 80;
const SEED: u64 = 0x5eed_1234_abcd_0042;

/// Deterministic splitmix64 stream — the "seeded" part of the grid: both
/// engines see exactly the same generated table bytes.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn schema() -> Schema {
    Schema::from_pairs(&[
        ("k", DataType::Int),
        ("grp", DataType::Str),
        ("amount", DataType::Float),
    ])
}

/// Mixed-distribution table: sequential ints, a small string dictionary
/// with short pseudorandom runs, and a noisy float column.
fn register_mixed(server: &SharkServer, name: &str) {
    server.register_table(
        TableMeta::new(name, schema(), PARTITIONS, |p| {
            let mut rng = SEED ^ (p as u64).wrapping_mul(0xd134_2543_de82_ef95);
            (0..ROWS_PER_PARTITION)
                .map(|i| {
                    let r = splitmix(&mut rng);
                    row![
                        (p * ROWS_PER_PARTITION + i) as i64,
                        ["alpha", "beta", "gamma", "delta"][(r % 4) as usize],
                        (r % 10_000) as f64 / 100.0
                    ]
                })
                .collect()
        })
        .with_cache(PARTITIONS)
        .with_row_count_hint((PARTITIONS * ROWS_PER_PARTITION) as u64),
    );
}

/// Run-heavy table: `grp` holds long constant runs (RLE-friendly) over a
/// tiny dictionary, and `k` repeats in plateaus, so run-skipping predicates
/// and dictionary-coded group-by keys actually engage.
fn register_rle(server: &SharkServer, name: &str) {
    server.register_table(
        TableMeta::new(name, schema(), PARTITIONS, |p| {
            (0..ROWS_PER_PARTITION)
                .map(|i| {
                    let global = p * ROWS_PER_PARTITION + i;
                    row![
                        (global / 20) as i64,
                        ["hot", "cold"][(global / 40) % 2],
                        (global / 10) as f64 * 0.25
                    ]
                })
                .collect()
        })
        .with_cache(PARTITIONS)
        .with_row_count_hint((PARTITIONS * ROWS_PER_PARTITION) as u64),
    );
}

fn evict_some(server: &SharkServer, table: &str, partitions: &[usize]) {
    let mem = server.catalog().get(table).unwrap().cached.clone().unwrap();
    for &p in partitions {
        mem.evict_partition(p);
    }
}

/// Queries over table `$t` covering the vectorized operator surface:
/// numeric + string filters (conjunctions hit the run-skipping path on RLE
/// data), projections with reordering and expressions, dictionary-keyed
/// group-by with every aggregate kind, and top-k in both directions.
fn grid_queries(table: &str) -> Vec<String> {
    [
        // Filters.
        format!("SELECT k, grp, amount FROM {table} WHERE amount > 50.0"),
        format!("SELECT k, amount FROM {table} WHERE grp = 'beta' AND k < 300"),
        format!("SELECT k FROM {table} WHERE grp = 'hot'"),
        format!("SELECT k FROM {table} WHERE k >= 100 AND k < 140 AND amount > 1.0"),
        // Projections (reorder + all columns).
        format!("SELECT amount, k FROM {table}"),
        format!("SELECT grp, amount, k FROM {table} WHERE k < 250"),
        // Group-by / aggregates.
        format!("SELECT grp, COUNT(*), SUM(amount), MIN(k), MAX(amount) FROM {table} GROUP BY grp"),
        format!("SELECT grp, AVG(amount) FROM {table} WHERE k > 50 GROUP BY grp ORDER BY grp"),
        format!("SELECT COUNT(*), SUM(k) FROM {table}"),
        // Top-k.
        format!("SELECT k, amount FROM {table} ORDER BY amount DESC LIMIT 9"),
        format!("SELECT k FROM {table} ORDER BY k LIMIT 5"),
    ]
    .into_iter()
    .collect()
}

fn fetch_blocking(session: &SessionHandle, query: &str) -> Vec<Row> {
    session.sql(query).unwrap().result.rows
}

fn fetch_streamed(session: &SessionHandle, query: &str) -> Vec<Row> {
    session.sql_stream(query).unwrap().fetch_all().unwrap()
}

/// Compare two result sets byte-for-byte. Bare GROUP BY (no ORDER BY) does
/// not promise an output order, so those queries compare as sorted
/// multisets; everything else compares positionally.
fn assert_same(mut left: Vec<Row>, mut right: Vec<Row>, query: &str, context: &str) {
    let unordered = query.contains("GROUP BY") && !query.contains("ORDER BY");
    if unordered {
        left.sort();
        right.sort();
    }
    assert_eq!(left, right, "{context}: {query}");
}

#[test]
fn vectorized_and_row_paths_are_byte_identical_across_the_grid() {
    let server = SharkServer::new(ServerConfig::default());
    register_mixed(&server, "mixed_full");
    register_mixed(&server, "mixed_cold");
    register_rle(&server, "rle_runs");
    for t in ["mixed_full", "mixed_cold", "rle_runs"] {
        server.load_table(t).unwrap();
    }

    let vectorized = server.session();
    let mut row_path = server.session();
    let mut row_exec = ExecConfig::shark();
    row_exec.vectorized = false;
    row_path.set_exec_config(row_exec);

    for table in ["mixed_full", "mixed_cold", "rle_runs"] {
        for query in grid_queries(table) {
            // Partially-evicted state: knock a stripe out before every run
            // so each engine faults the same partitions back in from
            // lineage mid-query.
            if table == "mixed_cold" {
                evict_some(&server, table, &[1, 3]);
            }
            let reference = fetch_blocking(&row_path, &query);

            if table == "mixed_cold" {
                evict_some(&server, table, &[1, 3]);
            }
            let vec_blocking = fetch_blocking(&vectorized, &query);
            assert_same(
                vec_blocking,
                reference.clone(),
                &query,
                "vectorized blocking vs row",
            );

            if table == "mixed_cold" {
                evict_some(&server, table, &[1, 3]);
            }
            let vec_streamed = fetch_streamed(&vectorized, &query);
            assert_same(
                vec_streamed,
                reference.clone(),
                &query,
                "vectorized streamed vs row",
            );

            if table == "mixed_cold" {
                evict_some(&server, table, &[1, 3]);
            }
            let row_streamed = fetch_streamed(&row_path, &query);
            assert_same(row_streamed, reference, &query, "row streamed vs row");
        }
    }
}

#[test]
fn vectorized_path_actually_ran_fused_scans() {
    // Guard against the grid silently comparing row vs row: the vectorized
    // session's aggregation queries must go through the fused memstore
    // scan, observable in the plan notes.
    let server = SharkServer::new(ServerConfig::default());
    register_rle(&server, "rle_runs");
    server.load_table("rle_runs").unwrap();
    let session = server.session();
    let result = session
        .sql("SELECT grp, COUNT(*), SUM(amount) FROM rle_runs GROUP BY grp")
        .unwrap();
    assert!(
        result.result.notes.iter().any(|n| n.contains("vectorized")),
        "expected a vectorized plan note, got {:?}",
        result.result.notes
    );
}
