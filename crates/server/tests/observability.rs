//! End-to-end tests of query-lifecycle observability: every span a query
//! opens is closed and parented inside its own trace (blocking, streamed
//! and top-k streamed shapes), the admission wait shows up as its own span
//! and histogram, and `EXPLAIN ANALYZE` — run over a partially evicted
//! table — reports per-operator times, stream cardinality and lineage
//! rebuild counts that agree with both the delivered rows and the unified
//! metrics registry.

use std::collections::BTreeSet;

use shark_common::{row, DataType, Schema, Value};
use shark_server::{ServerConfig, SharkServer};
use shark_sql::TableMeta;

const PARTITIONS: usize = 8;
const ROWS_PER_PARTITION: usize = 50;

/// The global tracer's enabled flag is process-wide state; every test here
/// flips or reads it, so they run serialized.
static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn register_tables(server: &SharkServer, names: &[&str]) {
    for name in names {
        let schema = Schema::from_pairs(&[
            ("k", DataType::Int),
            ("grp", DataType::Str),
            ("amount", DataType::Float),
        ]);
        server.register_table(
            TableMeta::new(name, schema, PARTITIONS, move |p| {
                (0..ROWS_PER_PARTITION)
                    .map(|i| {
                        row![
                            (p * ROWS_PER_PARTITION + i) as i64,
                            ["alpha", "beta", "gamma"][i % 3],
                            (p * ROWS_PER_PARTITION + i) as f64 * 0.5
                        ]
                    })
                    .collect()
            })
            .with_cache(PARTITIONS)
            .with_row_count_hint((PARTITIONS * ROWS_PER_PARTITION) as u64),
        );
    }
}

/// Evict specific partitions directly through the memtable, simulating
/// earlier budget pressure.
fn evict_some(server: &SharkServer, table: &str, partitions: &[usize]) {
    let mem = server.catalog().get(table).unwrap().cached.clone().unwrap();
    for &p in partitions {
        assert!(mem.evict_partition(p) > 0, "partition {p} was not resident");
    }
}

/// The `plan` column of an EXPLAIN result as plain lines.
fn plan_lines(rows: &[shark_common::Row]) -> Vec<String> {
    rows.iter()
        .map(|r| match r.get(0) {
            Value::Str(s) => s.to_string(),
            other => panic!("EXPLAIN row is not a string: {other:?}"),
        })
        .collect()
}

/// Extract `key=value` (value = digits) from a rendered line.
fn field_u64(line: &str, key: &str) -> u64 {
    let pat = format!("{key}=");
    let start = line
        .find(&pat)
        .unwrap_or_else(|| panic!("no {key} in: {line}"))
        + pat.len();
    line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("bad {key} in: {line}"))
}

#[test]
fn every_span_closes_and_parents_resolve_across_query_shapes() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let tracer = shark_obs::tracer();
    let server = SharkServer::new(ServerConfig::default());
    register_tables(&server, &["t0"]);
    server.load_table("t0").unwrap();
    let session = server.session();

    let open_before = tracer.open_spans();
    tracer.clear();
    tracer.set_enabled(true);

    // One of each representative shape: blocking aggregate, streamed scan,
    // streamed top-k (ORDER BY + LIMIT through the pushdown path).
    let blocking = session
        .sql("SELECT grp, COUNT(*) FROM t0 GROUP BY grp ORDER BY grp")
        .unwrap();
    assert_eq!(blocking.result.rows.len(), 3);
    let streamed = session
        .sql_stream("SELECT k, amount FROM t0 WHERE k < 120")
        .unwrap()
        .fetch_all()
        .unwrap();
    assert_eq!(streamed.len(), 120);
    let topk = session
        .sql_stream("SELECT k FROM t0 ORDER BY k LIMIT 5")
        .unwrap()
        .fetch_all()
        .unwrap();
    assert_eq!(topk.len(), 5);

    tracer.set_enabled(false);

    // Every span that was opened has been closed and recorded.
    assert_eq!(
        tracer.open_spans(),
        open_before,
        "queries left spans open (unbalanced start/record)"
    );

    let records = tracer.all_records();
    let roots: Vec<_> = records
        .iter()
        .filter(|r| r.name == "query" || r.name == "query-stream")
        .collect();
    assert_eq!(roots.len(), 3, "expected one root span per query");
    assert!(roots.iter().all(|r| r.parent_id == 0));
    // The three queries produced three distinct traces.
    let trace_ids: BTreeSet<u64> = roots.iter().map(|r| r.trace_id).collect();
    assert_eq!(trace_ids.len(), 3);

    for &trace_id in &trace_ids {
        let trace = tracer.records_for(trace_id);
        let ids: BTreeSet<u64> = trace.iter().map(|r| r.span_id).collect();
        // Parent consistency: every parent id resolves inside the trace.
        for r in &trace {
            assert!(
                r.parent_id == 0 || ids.contains(&r.parent_id),
                "span {} ({}) has dangling parent {}",
                r.span_id,
                r.name,
                r.parent_id
            );
        }
        // Satellite: the admission-queue wait is its own span.
        assert!(
            trace.iter().any(|r| r.name == "admission-wait"),
            "trace {trace_id} lacks an admission-wait span"
        );
        // Lifecycle phases reached the ring.
        assert!(trace.iter().any(|r| r.name == "plan"));
        assert!(trace.iter().any(|r| r.name == "optimize"));
        assert!(trace.iter().any(|r| r.name == "stage-launch"));
    }

    // The streamed traces carry per-partition operator spans and deliveries.
    let has = |name: &str| records.iter().any(|r| r.name == name);
    assert!(has("memstore_scan(t0)"));
    assert!(has("stream-deliver"));
    assert!(has("top-k"));
}

#[test]
fn disabled_tracer_records_nothing_for_queries() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let tracer = shark_obs::tracer();
    tracer.set_enabled(false);
    tracer.clear();

    let server = SharkServer::new(ServerConfig::default());
    register_tables(&server, &["t0"]);
    server.load_table("t0").unwrap();
    let session = server.session();
    session.sql("SELECT COUNT(*) FROM t0").unwrap();
    session
        .sql_stream("SELECT k FROM t0 LIMIT 5")
        .unwrap()
        .fetch_all()
        .unwrap();

    assert!(
        tracer.all_records().is_empty(),
        "tracing-disabled queries must not record spans"
    );
}

#[test]
fn explain_analyze_agrees_with_delivery_and_metrics_registry() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Works with the global tracer off: EXPLAIN ANALYZE subscribes its own
    // scoped interest.
    shark_obs::tracer().set_enabled(false);

    let server = SharkServer::new(ServerConfig::default());
    register_tables(&server, &["t0"]);
    server.load_table("t0").unwrap();
    let session = server.session();

    // Close-up 1: a full streamed scan over a partially evicted table
    // executes every partition, so it rebuilds *exactly* the evicted
    // stripe — and the report must agree with the registry's counter.
    let evicted = [1usize, 4, 6];
    evict_some(&server, "t0", &evicted);
    let before = shark_obs::metrics().snapshot();
    let full = session
        .sql("EXPLAIN ANALYZE SELECT k, amount FROM t0")
        .unwrap();
    let after = shark_obs::metrics().snapshot();
    let full_lines = plan_lines(&full.result.rows);
    let full_rendered = full_lines.join("\n");
    let full_scan_line = full_lines
        .iter()
        .find(|l| l.starts_with("op memstore_scan(t0):"))
        .unwrap_or_else(|| panic!("no scan op line in:\n{full_rendered}"));
    assert_eq!(field_u64(full_scan_line, "partitions"), PARTITIONS as u64);
    assert_eq!(
        field_u64(full_scan_line, "rebuilds"),
        evicted.len() as u64,
        "each evicted partition should rebuild exactly once:\n{full_rendered}"
    );
    assert_eq!(
        field_u64(full_scan_line, "cache_hits"),
        (PARTITIONS - evicted.len()) as u64,
        "resident partitions should be memstore cache hits:\n{full_rendered}"
    );
    assert_eq!(
        field_u64(full_scan_line, "rebuilds"),
        after.counter("shark_partition_rebuilds_total")
            - before.counter("shark_partition_rebuilds_total"),
        "full-scan rebuilds disagree with the metrics registry:\n{full_rendered}"
    );
    assert_eq!(
        field_u64(full_scan_line, "rows"),
        (PARTITIONS * ROWS_PER_PARTITION) as u64
    );

    // Close-up 2: the streamed ORDER BY + LIMIT shape. The rebuild above
    // restored residency, so evict the stripe again first.
    evict_some(&server, "t0", &evicted);
    let before = shark_obs::metrics().snapshot();
    let analyzed = session
        .sql("EXPLAIN ANALYZE SELECT k FROM t0 ORDER BY k LIMIT 5")
        .unwrap();
    let after = shark_obs::metrics().snapshot();
    let lines = plan_lines(&analyzed.result.rows);
    let rendered = lines.join("\n");

    // Header: parent ids resolved within the trace.
    assert!(
        lines[0].starts_with("EXPLAIN ANALYZE trace=")
            && lines[0].ends_with("parents_consistent=true"),
        "unexpected header: {}",
        lines[0]
    );

    // Per-operator lines show wall time, rows and partition counts.
    let scan_line = lines
        .iter()
        .find(|l| l.starts_with("op memstore_scan(t0):"))
        .unwrap_or_else(|| panic!("no scan op line in:\n{rendered}"));
    assert!(scan_line.contains("time="), "no time in: {scan_line}");
    assert!(field_u64(scan_line, "rows") > 0);
    assert!(field_u64(scan_line, "partitions") > 0);

    // The stream summary's cardinality equals what the query delivers.
    let stream_line = lines
        .iter()
        .find(|l| l.starts_with("stream: "))
        .unwrap_or_else(|| panic!("no stream line in:\n{rendered}"));
    assert_eq!(field_u64(stream_line, "rows"), 5);
    // Statistics-ordered top-k launch: the low-k partitions satisfy the
    // limit, so the tail of the launch order is skipped outright.
    assert!(
        field_u64(stream_line, "topk_skipped") > 0,
        "expected skipped partitions in:\n{rendered}"
    );

    // Rebuild counts agree between the rendered report and the unified
    // registry's counter delta for this statement. (Top-k skipping means
    // not every evicted partition executes, so the report and the counter
    // must move in lockstep rather than match the eviction count.)
    let reported_rebuilds: u64 = lines
        .iter()
        .filter(|l| l.starts_with("op "))
        .map(|l| field_u64(l, "rebuilds"))
        .sum();
    let counted_rebuilds = after.counter("shark_partition_rebuilds_total")
        - before.counter("shark_partition_rebuilds_total");
    assert_eq!(
        reported_rebuilds, counted_rebuilds,
        "EXPLAIN ANALYZE rebuilds disagree with the metrics registry:\n{rendered}"
    );

    // Delivered rows phase matches too: stream-deliver rows == 5.
    let deliver_line = lines
        .iter()
        .find(|l| l.starts_with("phase stream-deliver:"))
        .unwrap_or_else(|| panic!("no stream-deliver phase in:\n{rendered}"));
    assert_eq!(field_u64(deliver_line, "rows"), 5);

    // Every partition the scan executed was either served from the
    // memstore cache or rebuilt from lineage.
    let cache_hits = field_u64(scan_line, "cache_hits");
    let scan_rebuilds = field_u64(scan_line, "rebuilds");
    assert_eq!(
        cache_hits + scan_rebuilds,
        field_u64(scan_line, "partitions"),
        "scan partitions unaccounted for:\n{rendered}"
    );

    // EXPLAIN without ANALYZE stays a pure plan rendering (no execution).
    let plain = session
        .sql("EXPLAIN SELECT k FROM t0 ORDER BY k LIMIT 5")
        .unwrap();
    let plain_lines = plan_lines(&plain.result.rows);
    assert!(plain_lines[0].starts_with("plan: "));
    assert!(plain_lines.iter().any(|l| l.starts_with("scan t0:")));
}

#[test]
fn streamed_explain_analyze_row_counts_match_plain_run() {
    let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    shark_obs::tracer().set_enabled(false);

    let server = SharkServer::new(ServerConfig::default());
    register_tables(&server, &["t0"]);
    server.load_table("t0").unwrap();
    let session = server.session();

    let query = "SELECT k, amount FROM t0 WHERE k < 120";
    let expected = session.sql(query).unwrap().result.rows.len() as u64;
    let analyzed = session.sql(&format!("EXPLAIN ANALYZE {query}")).unwrap();
    let lines = plan_lines(&analyzed.result.rows);
    let stream_line = lines
        .iter()
        .find(|l| l.starts_with("stream: "))
        .expect("stream line");
    assert_eq!(field_u64(stream_line, "rows"), expected);
    // Admission-wait histogram saw this session's statements.
    let snap = shark_obs::metrics().snapshot();
    assert!(snap
        .histogram("shark_admission_wait_seconds")
        .is_some_and(|h| h.count >= 2));
}
