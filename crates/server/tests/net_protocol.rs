//! Wire-protocol robustness: the TCP frontend must survive garbage,
//! oversized and torn frames, reject bad credentials, and — the one that
//! matters for capacity — release every admission permit, memstore pin and
//! prefetch grant held by a query whose client vanished mid-stream.
//!
//! These tests speak the protocol by hand over raw `TcpStream`s using the
//! server's own frame codec, so they can produce byte sequences a
//! well-behaved client never would.

use std::io::Write as _;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use shark_common::{row, DataType, Schema};
use shark_server::net::frame::{self, Frame, MAX_FRAME_BYTES};
use shark_server::{NetConfig, NetServer, ServerConfig, SharkServer};
use shark_sql::TableMeta;

const PARTITIONS: usize = 4;
const ROWS_PER_PARTITION: usize = 200;

fn serve(config: NetConfig) -> (SharkServer, NetServer) {
    let server = SharkServer::new(ServerConfig::default());
    let schema = Schema::from_pairs(&[("k", DataType::Int), ("grp", DataType::Str)]);
    server.register_table(
        TableMeta::new("t0", schema, PARTITIONS, move |p| {
            (0..ROWS_PER_PARTITION)
                .map(|i| row![(p * ROWS_PER_PARTITION + i) as i64, ["a", "b", "c"][i % 3]])
                .collect()
        })
        .with_cache(PARTITIONS)
        .with_row_count_hint((PARTITIONS * ROWS_PER_PARTITION) as u64),
    );
    server.load_table("t0").unwrap();
    let net = server.serve(config).unwrap();
    (server, net)
}

fn handshake(addr: std::net::SocketAddr, token: &str) -> TcpStream {
    let mut stream = TcpStream::connect(addr).unwrap();
    frame::write_frame(
        &mut stream,
        &Frame::Hello {
            token: token.to_string(),
            tenant: String::new(),
        },
    )
    .unwrap();
    let (reply, _) = frame::read_frame(&mut stream).unwrap();
    assert!(matches!(reply, Frame::HelloOk { .. }), "got {reply:?}");
    stream
}

/// Wait (bounded) for an asynchronous server-side condition.
fn await_condition(what: &str, mut check: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !check() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Read frames until the peer closes; return the first Error frame seen.
fn read_to_close(stream: &mut TcpStream) -> Option<(String, String)> {
    let mut error = None;
    loop {
        match frame::read_frame(stream) {
            Ok((Frame::Error { kind, message }, _)) => {
                error.get_or_insert((kind, message));
            }
            Ok(_) => {}
            Err(_) => return error,
        }
    }
}

#[test]
fn garbage_oversized_and_unexpected_frames_are_protocol_errors() {
    let (server, mut net) = serve(NetConfig::default());
    let addr = net.local_addr();

    // An unknown frame type with a valid header and checksum.
    let mut conn = handshake(addr, "");
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&0u32.to_le_bytes());
    bytes.push(99); // no such frame type
    bytes.extend_from_slice(&frame::checksum(&[]).to_le_bytes());
    conn.write_all(&bytes).unwrap();
    let (kind, _) = read_to_close(&mut conn).expect("server must report the error");
    assert_eq!(kind, "protocol");

    // A corrupted checksum on an otherwise valid frame.
    let mut conn = handshake(addr, "");
    let payload = Frame::Close.encode_payload();
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.push(Frame::Close.frame_type());
    bytes.extend_from_slice(&(frame::checksum(&payload) ^ 0xdead).to_le_bytes());
    bytes.extend_from_slice(&payload);
    conn.write_all(&bytes).unwrap();
    let (kind, message) = read_to_close(&mut conn).expect("server must report the error");
    assert_eq!(kind, "protocol");
    assert!(message.contains("checksum"), "got: {message}");

    // A length field past the frame cap must be rejected up front (the
    // server must not try to allocate or read the claimed body).
    let mut conn = handshake(addr, "");
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_le_bytes());
    bytes.push(Frame::Close.frame_type());
    bytes.extend_from_slice(&0u64.to_le_bytes());
    conn.write_all(&bytes).unwrap();
    let (kind, _) = read_to_close(&mut conn).expect("server must report the error");
    assert_eq!(kind, "protocol");

    // A server-to-client frame type sent by the client.
    let mut conn = handshake(addr, "");
    frame::write_frame(
        &mut conn,
        &Frame::QueryDone {
            rows: 0,
            partitions: 0,
            plan_cache_hit: false,
            sim_seconds: 0.0,
            cancelled: false,
        },
    )
    .unwrap();
    let (kind, _) = read_to_close(&mut conn).expect("server must report the error");
    assert_eq!(kind, "protocol");

    await_condition("all connections to close", || {
        server.report().connections_active == 0
    });
    let report = server.report();
    assert!(
        report.net_protocol_errors >= 4,
        "expected >= 4 protocol errors, got {}",
        report.net_protocol_errors
    );
    net.shutdown();
}

#[test]
fn torn_frames_and_silent_disconnects_close_cleanly() {
    let (server, mut net) = serve(NetConfig::default());
    let addr = net.local_addr();

    // Half a header, then gone: an IO-level teardown, not a protocol error.
    let mut conn = handshake(addr, "");
    conn.write_all(&[0x05, 0x00, 0x00]).unwrap();
    drop(conn);

    // Nothing at all, then gone.
    let conn = TcpStream::connect(addr).unwrap();
    drop(conn);

    await_condition("all connections to close", || {
        let report = server.report();
        report.connections_opened >= 2 && report.connections_active == 0
    });
    assert_eq!(server.report().net_protocol_errors, 0);
    net.shutdown();
    assert_eq!(server.report().connections_active, 0);
}

#[test]
fn bad_auth_token_is_rejected_and_counted() {
    let (server, mut net) = serve(NetConfig::default().with_auth_token("sesame"));
    let addr = net.local_addr();

    let mut conn = TcpStream::connect(addr).unwrap();
    frame::write_frame(
        &mut conn,
        &Frame::Hello {
            token: "open".to_string(),
            tenant: String::new(),
        },
    )
    .unwrap();
    match frame::read_frame(&mut conn) {
        Ok((Frame::Error { kind, .. }, _)) => assert_eq!(kind, "auth"),
        other => panic!("expected auth error, got {other:?}"),
    }

    // The right token still works.
    let mut conn = handshake(addr, "sesame");
    frame::write_frame(&mut conn, &Frame::Close).unwrap();

    await_condition("all connections to close", || {
        server.report().connections_active == 0
    });
    let report = server.report();
    assert_eq!(report.net_auth_failures, 1);
    assert_eq!(report.net_protocol_errors, 0);
    net.shutdown();
}

#[test]
fn mid_query_disconnect_releases_permit_pins_and_prefetch() {
    let (server, mut net) = serve(NetConfig::default().with_max_batch_rows(16));
    let addr = net.local_addr();

    // Start a full-table scan, read only the schema frame, then vanish.
    let mut conn = handshake(addr, "");
    frame::write_frame(
        &mut conn,
        &Frame::Query {
            sql: "SELECT k, grp FROM t0".to_string(),
        },
    )
    .unwrap();
    let (schema, _) = frame::read_frame(&mut conn).unwrap();
    assert!(matches!(schema, Frame::ResultSchema { .. }));
    drop(conn);

    // The abandoned cursor must unwind completely on its own: admission
    // permit back, memstore pins dropped, prefetch budget returned.
    await_condition("the abandoned query to release its permit", || {
        server.running_queries() == 0
    });
    await_condition("the prefetch grant to come back", || {
        server.prefetch_in_use() == 0
    });
    await_condition("the connection to be deregistered", || {
        server.report().connections_active == 0
    });

    // And the server still serves: a fresh connection runs to completion.
    let mut conn = handshake(addr, "");
    frame::write_frame(
        &mut conn,
        &Frame::Query {
            sql: "SELECT COUNT(*) FROM t0".to_string(),
        },
    )
    .unwrap();
    let mut rows = 0u64;
    loop {
        match frame::read_frame(&mut conn).unwrap().0 {
            Frame::ResultSchema { .. } => {}
            Frame::ResultBatch { rows: batch } => rows += batch.len() as u64,
            Frame::QueryDone {
                rows: total,
                cancelled,
                ..
            } => {
                assert_eq!(rows, total);
                assert!(!cancelled);
                break;
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
    frame::write_frame(&mut conn, &Frame::Close).unwrap();

    net.shutdown();
    let report = server.report();
    assert_eq!(report.connections_active, 0);
    assert_eq!(server.running_queries(), 0);
    assert_eq!(server.prefetch_in_use(), 0);
}
