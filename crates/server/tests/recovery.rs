//! Crash-recovery matrix for the durable catalog (WAL + snapshot +
//! spill-frame re-adoption).
//!
//! Kill points × damage states:
//!
//! * clean `shutdown()` → `restore()` — frames adopted, queries
//!   byte-identical, promotions not rebuilds, exact counter deltas;
//! * crash with **no checkpoint** (WAL-only replay) — tables and frames
//!   reconstructed from the log alone;
//! * **torn WAL tail** (a partial append) — truncated, valid prefix kept;
//! * **corrupt snapshot** — read as absent, WAL replay still restores;
//! * **corrupt manifest** — frames become orphans, queries fall back to
//!   lineage recompute, never an error;
//! * **truncated frame** — rejected at adoption, its partition rebuilt;
//! * leftover `.tmp-` files from a kill mid-rename — swept at restore.
//!
//! Every scenario seeds its tables with the same deterministic generator,
//! so "byte-identical" means exactly that.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use shark_common::{row, DataType, Row, Schema};
use shark_server::{ServerConfig, SessionHandle, SharkServer, TableRecord};
use shark_sql::{RowGenerator, TableMeta};

const PARTITIONS: usize = 6;
const ROWS_PER_PARTITION: usize = 64;
const SEED: u64 = 0x5eed_cafe_f00d_beef;

/// Fresh scratch directory for one test's durable state. CI points
/// `SHARK_SPILL_TEST_DIR` at a job-scoped tmpdir; locally the system temp
/// dir is used.
fn scratch_dir(tag: &str) -> PathBuf {
    static NONCE: AtomicU64 = AtomicU64::new(0);
    let n = NONCE.fetch_add(1, Ordering::Relaxed);
    let base = std::env::var_os("SHARK_SPILL_TEST_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);
    base.join(format!("shark-recovery-{tag}-{}-{n}", std::process::id()))
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn schema() -> Schema {
    Schema::from_pairs(&[
        ("k", DataType::Int),
        ("grp", DataType::Str),
        ("amount", DataType::Float),
    ])
}

/// The seeded generator, a plain `fn` so the first incarnation and the
/// restore resolver attach *the same* lineage.
fn facts_rows(p: usize) -> Vec<Row> {
    let mut rng = SEED ^ (p as u64).wrapping_mul(0xd134_2543_de82_ef95);
    (0..ROWS_PER_PARTITION)
        .map(|i| {
            let r = splitmix(&mut rng);
            row![
                (p * ROWS_PER_PARTITION + i) as i64,
                ["alpha", "beta", "gamma", "delta"][(r % 4) as usize],
                (r % 10_000) as f64 / 100.0
            ]
        })
        .collect()
}

fn register_facts(server: &SharkServer) {
    server.register_table(
        TableMeta::new("facts", schema(), PARTITIONS, facts_rows)
            .with_cache(PARTITIONS)
            .with_row_count_hint((PARTITIONS * ROWS_PER_PARTITION) as u64),
    );
}

/// Resolver for `restore_with`: re-attach the real generator to `facts`.
fn resolve(record: &TableRecord) -> Option<RowGenerator> {
    (record.name == "facts").then(|| Arc::new(facts_rows) as RowGenerator)
}

fn grid_queries() -> Vec<String> {
    vec![
        // Full scan first, so the restored run faults in every partition.
        "SELECT COUNT(*), SUM(k) FROM facts".into(),
        "SELECT k, grp, amount FROM facts WHERE amount > 50.0".into(),
        "SELECT grp, COUNT(*), SUM(amount), MIN(k), MAX(amount) \
         FROM facts GROUP BY grp ORDER BY grp"
            .into(),
        "SELECT k, amount FROM facts ORDER BY amount DESC LIMIT 9".into(),
    ]
}

fn fetch(session: &SessionHandle, query: &str) -> Vec<Row> {
    session.sql(query).unwrap().result.rows
}

/// Reference rows from a fully resident first incarnation.
fn references(session: &SessionHandle) -> Vec<(String, Vec<Row>)> {
    grid_queries()
        .into_iter()
        .map(|q| {
            let rows = fetch(session, &q);
            (q, rows)
        })
        .collect()
}

fn assert_grid_matches(server: &SharkServer, reference: &[(String, Vec<Row>)], context: &str) {
    let session = server.session();
    for (query, expected) in reference {
        let got = fetch(&session, query);
        assert_eq!(&got, expected, "{context}: {query}");
    }
}

fn spill_config(dir: &PathBuf) -> ServerConfig {
    ServerConfig::default().with_spill_dir(dir)
}

/// Build, load and quiesce the first incarnation; returns the reference
/// rows and the catalog epoch it shut down at.
fn populate_and_shutdown(dir: &PathBuf) -> (Vec<(String, Vec<Row>)>, u64) {
    let server = SharkServer::new(spill_config(dir));
    register_facts(&server);
    server.load_table("facts").unwrap();
    let reference = references(&server.session());
    let epoch = server.report().catalog_epoch;
    server.shutdown().unwrap();
    (reference, epoch)
}

#[test]
fn restore_after_clean_shutdown_serves_adopted_frames_byte_identically() {
    let dir = scratch_dir("clean");
    let (reference, epoch_before) = populate_and_shutdown(&dir);

    // Restore *without* a resolver: every row below must come from memory
    // or an adopted frame — a single lineage recompute would hit the
    // placeholder generator and panic.
    let server = SharkServer::restore(spill_config(&dir)).unwrap();
    let report = server.report();
    assert!(report.restored && report.wal_enabled);
    assert_eq!(report.recovery_tables_restored, 1);
    assert_eq!(report.recovery_placeholder_tables, 1);
    assert_eq!(report.recovery_frames_adopted, PARTITIONS as u64);
    assert_eq!(report.recovery_frames_rejected, 0);
    assert_eq!(report.recovery_orphans_swept, 0);
    // The shutdown checkpoint folded everything into the snapshot: the WAL
    // replays empty and untorn.
    assert_eq!(report.recovery_wal_records_replayed, 0);
    assert!(!report.recovery_torn_wal_tail);
    assert_eq!(report.catalog_epoch, epoch_before);

    assert_grid_matches(&server, &reference, "clean restore");

    // Warm frames were *promoted* (one I/O move per partition), never
    // rebuilt from lineage.
    let after = server.report();
    assert_eq!(after.partition_promotions, PARTITIONS as u64);
    assert_eq!(after.partition_rebuilds, 0);
    assert_eq!(after.partitions_promoted, PARTITIONS as u64);
}

#[test]
fn wal_only_crash_restore_reconstructs_tables_and_frames_from_the_log() {
    let dir = scratch_dir("crash");
    let reference = {
        // A huge checkpoint cadence keeps every record in the WAL, and the
        // server is dropped without `shutdown()` — the crash. The demotions
        // were journaled at the admin-call boundary, so the log alone holds
        // the whole story: 1 `Created` + PARTITIONS `Demoted`.
        let server = SharkServer::new(spill_config(&dir).with_wal_snapshot_every(10_000));
        register_facts(&server);
        server.load_table("facts").unwrap();
        let reference = references(&server.session());
        server.demote_table("facts");
        reference
    };

    let server = SharkServer::restore_with(spill_config(&dir), resolve).unwrap();
    let report = server.report();
    assert!(report.restored);
    assert_eq!(report.recovery_tables_restored, 1);
    assert_eq!(report.recovery_placeholder_tables, 0);
    assert_eq!(report.recovery_wal_records_replayed, 1 + PARTITIONS as u64);
    assert!(!report.recovery_torn_wal_tail);
    assert_eq!(report.recovery_frames_adopted, PARTITIONS as u64);
    assert_eq!(report.recovery_frames_rejected, 0);

    assert_grid_matches(&server, &reference, "wal-only restore");
    let after = server.report();
    assert_eq!(after.partition_promotions, PARTITIONS as u64);
    assert_eq!(after.partition_rebuilds, 0);
}

#[test]
fn torn_wal_tail_is_truncated_and_the_valid_prefix_replays() {
    let dir = scratch_dir("torn");
    let reference = {
        let server = SharkServer::new(spill_config(&dir).with_wal_snapshot_every(10_000));
        register_facts(&server);
        server.load_table("facts").unwrap();
        let reference = references(&server.session());
        server.demote_table("facts");
        reference
    };
    // Kill point mid-WAL-append: a length prefix promising a record whose
    // bytes never arrived.
    {
        use std::io::Write as _;
        let mut wal = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join(shark_server::WAL_FILE))
            .unwrap();
        wal.write_all(&[0x40, 0x00, 0x00, 0x00, 0xde, 0xad])
            .unwrap();
    }

    let server = SharkServer::restore_with(spill_config(&dir), resolve).unwrap();
    let report = server.report();
    assert!(report.restored);
    assert!(
        report.recovery_torn_wal_tail,
        "tail damage must be surfaced"
    );
    // The valid prefix survives in full.
    assert_eq!(report.recovery_wal_records_replayed, 1 + PARTITIONS as u64);
    assert_eq!(report.recovery_frames_adopted, PARTITIONS as u64);

    assert_grid_matches(&server, &reference, "torn-tail restore");
    let after = server.report();
    assert_eq!(after.partition_promotions, PARTITIONS as u64);
    assert_eq!(after.partition_rebuilds, 0);
}

#[test]
fn corrupt_snapshot_reads_as_absent_and_wal_replay_still_restores() {
    let dir = scratch_dir("badsnap");
    let reference = {
        let server = SharkServer::new(spill_config(&dir).with_wal_snapshot_every(10_000));
        register_facts(&server);
        server.load_table("facts").unwrap();
        let reference = references(&server.session());
        server.demote_table("facts");
        reference
    };
    // Kill point mid-snapshot: the boot checkpoint's (empty) snapshot is
    // damaged on disk. Restore must treat it as absent and rebuild the
    // catalog from the WAL alone.
    corrupt_last_byte(&dir.join(shark_server::SNAPSHOT_FILE));

    let server = SharkServer::restore_with(spill_config(&dir), resolve).unwrap();
    let report = server.report();
    assert!(report.restored);
    assert_eq!(report.recovery_tables_restored, 1);
    assert_eq!(report.recovery_frames_adopted, PARTITIONS as u64);

    assert_grid_matches(&server, &reference, "corrupt-snapshot restore");
    assert_eq!(server.report().partition_rebuilds, 0);
}

#[test]
fn corrupt_manifest_degrades_to_lineage_recompute_not_an_error() {
    let dir = scratch_dir("badman");
    let (reference, epoch_before) = populate_and_shutdown(&dir);
    // Kill point around the manifest rename: the manifest on disk is
    // damaged, and (post-shutdown) the WAL holds no demotion records to
    // rebuild the expectations from. The frames are unprovable — they must
    // be swept, and every query answered from lineage instead.
    corrupt_last_byte(&dir.join(shark_server::MANIFEST_FILE));

    let server = SharkServer::restore_with(spill_config(&dir), resolve).unwrap();
    let report = server.report();
    assert!(report.restored);
    assert_eq!(report.recovery_tables_restored, 1);
    assert_eq!(report.recovery_frames_adopted, 0);
    assert_eq!(report.recovery_frames_rejected, 0);
    assert_eq!(report.recovery_orphans_swept, PARTITIONS as u64);
    assert_eq!(report.catalog_epoch, epoch_before);

    assert_grid_matches(&server, &reference, "corrupt-manifest restore");
    let after = server.report();
    assert_eq!(after.partition_promotions, 0);
    assert_eq!(after.partition_rebuilds, PARTITIONS as u64);
}

#[test]
fn truncated_frame_is_rejected_at_adoption_and_its_partition_rebuilt() {
    let dir = scratch_dir("badframe");
    let (reference, _) = populate_and_shutdown(&dir);
    // Crash-truncated frame: the file exists but is shorter than the
    // manifest expects. Adoption must reject (and delete) exactly that
    // frame; its partition comes back through lineage.
    let frame = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .find(|p| p.extension().is_some_and(|x| x == "spill"))
        .expect("shutdown left no spill frames");
    let len = std::fs::metadata(&frame).unwrap().len();
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&frame)
        .unwrap();
    file.set_len(len / 2).unwrap();
    drop(file);

    let server = SharkServer::restore_with(spill_config(&dir), resolve).unwrap();
    let report = server.report();
    assert_eq!(report.recovery_frames_adopted, PARTITIONS as u64 - 1);
    assert_eq!(report.recovery_frames_rejected, 1);
    assert!(!frame.exists(), "a rejected frame must be deleted");

    assert_grid_matches(&server, &reference, "truncated-frame restore");
    let after = server.report();
    assert_eq!(after.partition_promotions, PARTITIONS as u64 - 1);
    assert_eq!(after.partition_rebuilds, 1);
}

#[test]
fn leftover_tmp_files_and_stray_frames_are_swept_at_restore() {
    let dir = scratch_dir("tmpsweep");
    let (reference, _) = populate_and_shutdown(&dir);
    // Kill points mid-rename leave `.tmp-` files; an unindexed `.spill`
    // file is a stray from some other incarnation. Neither may survive a
    // restore, and neither may disturb the adoptable frames.
    let tmp_manifest = dir.join("spill.tmp-write");
    let tmp_frame = dir.join("facts-deadbeef_3.tmp-42");
    let stray = dir.join("stray-0000000000000000_9.spill");
    for p in [&tmp_manifest, &tmp_frame, &stray] {
        std::fs::write(p, b"partial garbage").unwrap();
    }

    let server = SharkServer::restore(spill_config(&dir)).unwrap();
    let report = server.report();
    assert_eq!(report.recovery_frames_adopted, PARTITIONS as u64);
    assert_eq!(report.recovery_frames_rejected, 0);
    assert_eq!(report.recovery_orphans_swept, 1, "only the stray frame");
    assert!(!tmp_manifest.exists() && !tmp_frame.exists() && !stray.exists());

    assert_grid_matches(&server, &reference, "tmp-sweep restore");
}

#[test]
fn restore_without_a_spill_dir_is_a_config_error() {
    let err = match SharkServer::restore(ServerConfig::default()) {
        Ok(_) => panic!("restore without a spill dir must fail"),
        Err(err) => err,
    };
    assert_eq!(err.kind(), "config");
}

/// Flip the last byte of a file in place (checksum damage, size intact).
fn corrupt_last_byte(path: &std::path::Path) {
    let mut bytes = std::fs::read(path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    std::fs::write(path, bytes).unwrap();
}
