//! Plan-cache correctness: answers served from a cached plan must be
//! byte-identical to freshly planned ones across a seeded grid of
//! statements, and a DDL epoch bump (DROP + re-CTAS) must invalidate the
//! cached plan — observable as a `stale_plans` bump with hits staying flat
//! — while the replanned query sees the *new* table contents.

use shark_common::{row, DataType, Row, Schema};
use shark_server::{ServerConfig, SharkServer};
use shark_sql::TableMeta;

const PARTITIONS: usize = 4;
const ROWS_PER_PARTITION: usize = 64;

/// Deterministic pseudo-random fill so "seeded grid" means the same rows
/// on every server the test builds.
fn lcg(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    }
}

fn build_server(plan_cache_capacity: usize, seed: u64) -> SharkServer {
    let server =
        SharkServer::new(ServerConfig::default().with_plan_cache_capacity(plan_cache_capacity));
    let schema = Schema::from_pairs(&[
        ("k", DataType::Int),
        ("grp", DataType::Str),
        ("amount", DataType::Float),
    ]);
    server.register_table(
        TableMeta::new("grid", schema, PARTITIONS, move |p| {
            let mut next = lcg(seed ^ (p as u64));
            (0..ROWS_PER_PARTITION)
                .map(|i| {
                    row![
                        (p * ROWS_PER_PARTITION + i) as i64,
                        ["alpha", "beta", "gamma", "delta"][(next() % 4) as usize],
                        (next() % 10_000) as f64 / 100.0
                    ]
                })
                .collect()
        })
        .with_cache(PARTITIONS)
        .with_row_count_hint((PARTITIONS * ROWS_PER_PARTITION) as u64),
    );
    server.load_table("grid").unwrap();
    server
}

/// The statement grid: selections x predicates x shapes, all deterministic.
fn query_grid() -> Vec<String> {
    let mut grid = Vec::new();
    for pred in ["k < 100", "amount > 50.0", "grp = 'beta'"] {
        grid.push(format!(
            "SELECT k, grp, amount FROM grid WHERE {pred} ORDER BY k"
        ));
        grid.push(format!(
            "SELECT grp, COUNT(*), SUM(amount) FROM grid WHERE {pred} GROUP BY grp ORDER BY grp"
        ));
    }
    grid.push("SELECT k, amount FROM grid ORDER BY amount DESC LIMIT 7".to_string());
    grid
}

#[test]
fn cached_plans_answer_byte_identically_to_fresh_plans() {
    let seed = 0x5eed;
    let cached = build_server(64, seed);
    let uncached = build_server(0, seed);
    let cached_session = cached.session();
    let uncached_session = uncached.session();

    for query in query_grid() {
        // First run on the cached server plans fresh (miss) ...
        let first: Vec<Row> = cached_session.sql(&query).unwrap().result.rows;
        // ... repeats execute the cached plan ...
        let second: Vec<Row> = cached_session.sql(&query).unwrap().result.rows;
        let third: Vec<Row> = cached_session.sql(&query).unwrap().result.rows;
        // ... and a cache-disabled server plans every time.
        let fresh: Vec<Row> = uncached_session.sql(&query).unwrap().result.rows;
        assert_eq!(first, second, "cached re-run diverged: {query}");
        assert_eq!(first, third, "cached re-run diverged: {query}");
        assert_eq!(first, fresh, "cached vs uncached diverged: {query}");
    }

    let report = cached.report();
    let grid_len = query_grid().len() as u64;
    assert!(report.plan_cache_enabled);
    assert_eq!(report.plan_cache_misses, grid_len, "one miss per statement");
    assert_eq!(
        report.plan_cache_hits,
        2 * grid_len,
        "two hits per statement"
    );
    assert_eq!(report.plan_cache_stale_plans, 0, "no DDL ran");

    let disabled = uncached.report();
    assert!(!disabled.plan_cache_enabled);
    assert_eq!(disabled.plan_cache_hits, 0);
}

#[test]
fn ddl_epoch_bump_invalidates_cached_plans() {
    let server = build_server(64, 42);
    let session = server.session();

    session
        .sql("CREATE TABLE derived AS SELECT k, amount FROM grid WHERE k < 100")
        .unwrap();
    let query = "SELECT COUNT(*), SUM(amount) FROM derived";

    // Warm the plan: miss, then hit.
    let before = session.sql(query).unwrap().result.rows;
    let warmed = session.sql(query).unwrap().result.rows;
    assert_eq!(before, warmed);
    let report = server.report();
    assert_eq!(report.plan_cache_hits, 1);
    assert_eq!(report.plan_cache_stale_plans, 0);

    // DROP + re-CTAS with different contents bumps the catalog epoch.
    session.sql("DROP TABLE derived").unwrap();
    session
        .sql("CREATE TABLE derived AS SELECT k, amount FROM grid WHERE k < 10")
        .unwrap();

    // The fingerprint still matches, but the cached plan is pinned to the
    // old epoch: this execution must replan (stale bump, hits flat) and
    // see the new, smaller table.
    let after = session.sql(query).unwrap().result.rows;
    assert_ne!(before, after, "replanned query must see the new table");
    let report = server.report();
    assert_eq!(report.plan_cache_hits, 1, "hits stay flat across the DDL");
    assert_eq!(
        report.plan_cache_stale_plans, 1,
        "the invalidation is counted"
    );

    // And the replanned plan caches again at the new epoch.
    let again = session.sql(query).unwrap().result.rows;
    assert_eq!(after, again);
    assert_eq!(server.report().plan_cache_hits, 2);
}
