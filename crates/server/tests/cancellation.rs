//! Cancellation stress: 8 concurrent sessions each open a prefetching
//! streaming cursor, consume one batch, and drop the cursor mid-stream.
//! Dropping must cancel the prefetch pool (no partition beyond the window
//! ever executes — asserted through the table's generator counter and the
//! recorded `JobReport`s), release the admission permit, the memstore pins
//! and the prefetch-budget grant, and leave the server able to enforce its
//! memory budget and admit new queries.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use shark_common::{row, DataType, Schema};
use shark_server::{ServerConfig, SharkServer};
use shark_sql::TableMeta;

const SESSIONS: usize = 8;
const PARTITIONS: usize = 16;
const ROWS_PER_PARTITION: usize = 40;
const PREFETCH: usize = 2;

#[test]
fn dropping_prefetching_cursors_mid_stream_releases_everything() {
    let server = SharkServer::new(
        ServerConfig::default()
            .with_admission(SESSIONS, 0)
            .with_prefetch_budget(SESSIONS * PREFETCH),
    );
    // Uncached table: every partition execution calls the generator, so the
    // counter observes exactly how many result partitions ever ran.
    let executed = Arc::new(AtomicUsize::new(0));
    let counter = executed.clone();
    let schema = Schema::from_pairs(&[("v", DataType::Int)]);
    server.register_table(TableMeta::new("big", schema, PARTITIONS, move |p| {
        counter.fetch_add(1, Ordering::SeqCst);
        (0..ROWS_PER_PARTITION)
            .map(|i| row![(p * ROWS_PER_PARTITION + i) as i64])
            .collect()
    }));

    let barrier = Arc::new(Barrier::new(SESSIONS));
    let workers: Vec<_> = (0..SESSIONS)
        .map(|_| {
            let server = server.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let mut session = server.session();
                session.set_stream_prefetch(PREFETCH);
                barrier.wait();
                let mut cursor = session.sql_stream("SELECT v FROM big").unwrap();
                let first = cursor.next_batch().unwrap().expect("first batch");
                assert_eq!(first.len(), ROWS_PER_PARTITION);
                // Mid-stream: the cursor holds a permit and a budget grant.
                assert!(server.running_queries() >= 1);
                drop(cursor); // cancels + joins the prefetch workers
            })
        })
        .collect();
    for worker in workers {
        worker.join().unwrap();
    }

    // Everything a cursor held is back: permits, pins, prefetch budget.
    assert_eq!(server.running_queries(), 0);
    assert!(server.pinned_tables().is_empty());
    assert_eq!(server.prefetch_in_use(), 0);

    // Every stream was recorded as an early-terminated, non-failed query.
    let log = server.query_log();
    assert_eq!(log.len(), SESSIONS);
    let mut delivered_total = 0usize;
    for q in &log {
        assert!(q.streamed && !q.failed);
        assert_eq!(q.partitions_total, PARTITIONS);
        assert!(
            q.partitions_streamed < q.partitions_total,
            "cursor drop must stop the stream early: {q:?}"
        );
        delivered_total += q.partitions_streamed;
    }

    // No orphan work: cursor drop joined the workers, so the execution
    // count is final and bounded by what was delivered plus at most
    // `PREFETCH` speculative partitions per cursor.
    let ran = executed.load(Ordering::SeqCst);
    assert!(
        ran <= delivered_total + SESSIONS * PREFETCH,
        "{ran} partitions ran for {delivered_total} delivered (window {PREFETCH})"
    );
    assert!(ran >= SESSIONS, "every cursor delivered at least one batch");
    std::thread::sleep(std::time::Duration::from_millis(20));
    assert_eq!(
        executed.load(Ordering::SeqCst),
        ran,
        "partitions executed after every cursor was dropped"
    );

    // The recorded JobReports agree: each sql-stream job simulated exactly
    // the partitions it delivered, nothing more.
    let stream_stage_total: usize = server
        .context()
        .job_history()
        .iter()
        .filter(|j| j.name == "sql-stream")
        .map(|j| j.stages.len())
        .sum();
    assert_eq!(stream_stage_total, delivered_total);

    // The server is still fully operational: admission has free slots and
    // memstore enforcement proceeds on the next statement.
    let report = server.report();
    assert_eq!(report.streamed_queries, SESSIONS as u64);
    assert_eq!(report.failed_queries, 0);
    let session = server.session();
    let count = session.sql("SELECT COUNT(*) FROM big").unwrap();
    assert_eq!(
        count.result.rows[0].get_int(0).unwrap(),
        (PARTITIONS * ROWS_PER_PARTITION) as i64
    );
}

#[test]
fn memstore_enforcement_proceeds_after_mid_stream_drops() {
    // A budget of one byte makes every enforcement pass evict whatever
    // loaded; abandoned cursors must not wedge it (stale pins would keep
    // tables resident forever).
    let server = SharkServer::new(
        ServerConfig::default()
            .with_memory_budget(1)
            .with_prefetch_budget(4),
    );
    let schema = Schema::from_pairs(&[("v", DataType::Int)]);
    server.register_table(
        TableMeta::new("hot", schema, 8, |p| {
            (0..32).map(|i| row![(p * 32 + i) as i64]).collect()
        })
        .with_cache(4),
    );
    for _ in 0..3 {
        let mut session = server.session();
        session.set_stream_prefetch(2);
        let mut cursor = session.sql_stream("SELECT v FROM hot").unwrap();
        cursor.next_batch().unwrap().expect("first batch");
        drop(cursor);
    }
    // All pins are gone, so enforcement on the next query evicts the table
    // down to the (unsatisfiable) budget instead of deadlocking on pins.
    assert!(server.pinned_tables().is_empty());
    let session = server.session();
    let result = session.sql("SELECT COUNT(*) FROM hot").unwrap();
    assert_eq!(result.result.rows[0].get_int(0).unwrap(), 8 * 32);
    assert!(result.metrics.evictions_triggered > 0);
    assert_eq!(server.catalog().memstore_bytes(), 0);
    let report = server.report();
    assert!(report.evictions > 0);
}
