//! Spill-tier integration tests: the seeded residency grid (byte-equality
//! across resident / demoted / dropped table states and blocking /
//! streamed / vectorized / row execution paths), promotion-vs-rebuild
//! accounting, crash-mid-spill recovery (truncated and corrupted frames
//! fall back to lineage recompute, never a query error), spill-disk-budget
//! displacement, pin-release on failed or abandoned streams, and
//! owner-share re-apportionment when sessions close.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use shark_common::{row, DataType, Row, Schema};
use shark_server::{EvictionEvent, ServerConfig, SessionHandle, SharkServer};
use shark_sql::{ExecConfig, TableMeta};

const PARTITIONS: usize = 6;
const ROWS_PER_PARTITION: usize = 80;
const SEED: u64 = 0x5eed_0123_4567_89ab;

/// Fresh scratch directory for one test's spill tier. CI points
/// `SHARK_SPILL_TEST_DIR` at a job-scoped tmpdir; locally the system
/// temp dir is used.
fn scratch_dir(tag: &str) -> PathBuf {
    static NONCE: AtomicU64 = AtomicU64::new(0);
    let n = NONCE.fetch_add(1, Ordering::Relaxed);
    let base = std::env::var_os("SHARK_SPILL_TEST_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);
    base.join(format!("shark-spill-it-{tag}-{}-{n}", std::process::id()))
}

/// Disk budget for the displacement test: small enough that a six-frame
/// demotion must displace. `SHARK_SPILL_TEST_BUDGET` (bytes) overrides.
fn tight_budget() -> u64 {
    std::env::var("SHARK_SPILL_TEST_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6 * 1024)
}

/// Deterministic splitmix64 stream — both the reference and the spilled
/// runs regenerate exactly the same table bytes from lineage.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn schema() -> Schema {
    Schema::from_pairs(&[
        ("k", DataType::Int),
        ("grp", DataType::Str),
        ("amount", DataType::Float),
    ])
}

/// Mixed-distribution table: sequential ints, a small string dictionary,
/// noisy floats — exercises dictionary and plain column codecs in the
/// spill frames.
fn register_mixed(server: &SharkServer, name: &str) {
    server.register_table(
        TableMeta::new(name, schema(), PARTITIONS, |p| {
            let mut rng = SEED ^ (p as u64).wrapping_mul(0xd134_2543_de82_ef95);
            (0..ROWS_PER_PARTITION)
                .map(|i| {
                    let r = splitmix(&mut rng);
                    row![
                        (p * ROWS_PER_PARTITION + i) as i64,
                        ["alpha", "beta", "gamma", "delta"][(r % 4) as usize],
                        (r % 10_000) as f64 / 100.0
                    ]
                })
                .collect()
        })
        .with_cache(PARTITIONS)
        .with_row_count_hint((PARTITIONS * ROWS_PER_PARTITION) as u64),
    );
}

/// Run-heavy table: long constant runs so RLE-encoded spill frames and
/// run-skipping scans engage on the promoted copies.
fn register_rle(server: &SharkServer, name: &str) {
    server.register_table(
        TableMeta::new(name, schema(), PARTITIONS, |p| {
            (0..ROWS_PER_PARTITION)
                .map(|i| {
                    let global = p * ROWS_PER_PARTITION + i;
                    row![
                        (global / 20) as i64,
                        ["hot", "cold"][(global / 40) % 2],
                        (global / 10) as f64 * 0.25
                    ]
                })
                .collect()
        })
        .with_cache(PARTITIONS)
        .with_row_count_hint((PARTITIONS * ROWS_PER_PARTITION) as u64),
    );
}

/// Drop partitions straight out of memory, bypassing the spill tier — the
/// "dropped" residency state whose only recovery is lineage recompute.
fn drop_partitions(server: &SharkServer, table: &str) {
    let mem = server.catalog().get(table).unwrap().cached.clone().unwrap();
    for p in 0..PARTITIONS {
        mem.evict_partition(p);
    }
}

fn grid_queries(table: &str) -> Vec<String> {
    [
        format!("SELECT k, grp, amount FROM {table} WHERE amount > 50.0"),
        format!("SELECT k, amount FROM {table} WHERE grp = 'beta' AND k < 300"),
        format!("SELECT k FROM {table} WHERE grp = 'hot'"),
        format!("SELECT amount, k FROM {table}"),
        format!("SELECT grp, COUNT(*), SUM(amount), MIN(k), MAX(amount) FROM {table} GROUP BY grp"),
        format!("SELECT grp, AVG(amount) FROM {table} WHERE k > 50 GROUP BY grp ORDER BY grp"),
        format!("SELECT COUNT(*), SUM(k) FROM {table}"),
        format!("SELECT k, amount FROM {table} ORDER BY amount DESC LIMIT 9"),
    ]
    .into_iter()
    .collect()
}

fn fetch_blocking(session: &SessionHandle, query: &str) -> Vec<Row> {
    session.sql(query).unwrap().result.rows
}

fn fetch_streamed(session: &SessionHandle, query: &str) -> Vec<Row> {
    session.sql_stream(query).unwrap().fetch_all().unwrap()
}

/// Bare GROUP BY promises no output order; everything else compares
/// positionally, byte for byte.
fn assert_same(mut left: Vec<Row>, mut right: Vec<Row>, query: &str, context: &str) {
    let unordered = query.contains("GROUP BY") && !query.contains("ORDER BY");
    if unordered {
        left.sort();
        right.sort();
    }
    assert_eq!(left, right, "{context}: {query}");
}

fn demoted_partition_count(events: &[EvictionEvent]) -> usize {
    events
        .iter()
        .filter(|e| matches!(e, EvictionEvent::Demoted { .. }))
        .map(|e| e.partitions())
        .sum()
}

/// The headline acceptance grid: every query must return byte-identical
/// rows whether its table is fully resident, demoted to disk, or dropped
/// outright — and whether it runs blocking or streamed, vectorized or
/// row-at-a-time. Demoted tables must recover through promotions (I/O),
/// not lineage rebuilds.
#[test]
fn residency_grid_is_byte_identical_across_engines_and_tiers() {
    let dir = scratch_dir("grid");
    let server = SharkServer::new(ServerConfig::default().with_spill_dir(&dir));
    register_mixed(&server, "grid_mixed");
    register_rle(&server, "grid_rle");
    for t in ["grid_mixed", "grid_rle"] {
        server.load_table(t).unwrap();
    }

    let vectorized = server.session();
    let mut row_path = server.session();
    let mut row_exec = ExecConfig::shark();
    row_exec.vectorized = false;
    row_path.set_exec_config(row_exec);

    let rebuilds_before_demoted_runs = {
        // Reference rows come from the fully resident tables, row engine,
        // blocking fetch.
        let mut references = Vec::new();
        for table in ["grid_mixed", "grid_rle"] {
            for query in grid_queries(table) {
                references.push((table, query.clone(), fetch_blocking(&row_path, &query)));
            }
        }

        // Demoted tier: stage before every fetch (a promotion moves the
        // frame back into memory, so each mode faults the table in afresh).
        // A query whose predicate map-prunes a demoted partition never
        // touches its frame, so staging asserts the resulting *state* —
        // every partition on disk — not that this call demoted anything.
        let stage_demoted = |table: &str| {
            server.demote_table(table);
            let spill = server.spill().unwrap();
            for p in 0..PARTITIONS {
                assert!(
                    spill.is_spilled(table, p),
                    "staging left {table}:{p} neither resident nor demoted"
                );
            }
        };
        let rebuilds_before = server.report().partition_rebuilds;
        for (table, query, reference) in &references {
            for (context, fetch) in [
                (
                    "demoted vec blocking",
                    &fetch_blocking as &dyn Fn(&SessionHandle, &str) -> Vec<Row>,
                ),
                ("demoted vec streamed", &fetch_streamed),
            ] {
                stage_demoted(table);
                assert_same(fetch(&vectorized, query), reference.clone(), query, context);
            }
            for (context, fetch) in [
                (
                    "demoted row blocking",
                    &fetch_blocking as &dyn Fn(&SessionHandle, &str) -> Vec<Row>,
                ),
                ("demoted row streamed", &fetch_streamed),
            ] {
                stage_demoted(table);
                assert_same(fetch(&row_path, query), reference.clone(), query, context);
            }
        }
        let report = server.report();
        assert_eq!(
            report.partition_rebuilds, rebuilds_before,
            "demoted partitions must fault back via promotion, not lineage rebuild"
        );
        assert!(
            report.partition_promotions >= PARTITIONS as u64,
            "demoted runs promoted only {} partitions",
            report.partition_promotions
        );
        assert!(report.partitions_demoted >= PARTITIONS as u64);
        assert_eq!(report.spill_poisoned_files, 0);

        // Dropped tier: partitions leave memory with no spill frame, so
        // recovery is lineage recompute — results still byte-identical.
        for (table, query, reference) in &references {
            drop_partitions(&server, table);
            assert_same(
                fetch_blocking(&vectorized, query),
                reference.clone(),
                query,
                "dropped vec blocking",
            );
            drop_partitions(&server, table);
            assert_same(
                fetch_streamed(&row_path, query),
                reference.clone(),
                query,
                "dropped row streamed",
            );
        }
        report.partition_rebuilds
    };
    let final_report = server.report();
    assert!(
        final_report.partition_rebuilds > rebuilds_before_demoted_runs,
        "dropped runs must have recomputed from lineage"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Focused promotion accounting: demoting a table and scanning it once
/// moves every partition back through the spill tier — counted as
/// promotions, with zero new lineage rebuilds — and empties the disk tier
/// (promotion is a move, not a copy).
#[test]
fn demoted_faults_are_promotions_not_rebuilds() {
    let dir = scratch_dir("promote");
    let server = SharkServer::new(ServerConfig::default().with_spill_dir(&dir));
    register_mixed(&server, "promo_t");
    server.load_table("promo_t").unwrap();
    let session = server.session();

    let events = server.demote_table("promo_t");
    assert_eq!(
        demoted_partition_count(&events),
        PARTITIONS,
        "expected every partition demoted, got {events:?}"
    );
    let spill = server.spill().expect("spill tier configured");
    assert_eq!(spill.spilled_partition_count(), PARTITIONS as u64);
    assert!(spill.disk_bytes() > 0);

    let before = server.report();
    let rows = fetch_blocking(&session, "SELECT COUNT(*), SUM(k) FROM promo_t");
    let total = (PARTITIONS * ROWS_PER_PARTITION) as i64;
    assert_eq!(rows, vec![row![total, (0..total).sum::<i64>()]]);

    let after = server.report();
    assert_eq!(
        after.partition_rebuilds, before.partition_rebuilds,
        "scan of a demoted table must not rebuild from lineage"
    );
    assert_eq!(
        after.partition_promotions - before.partition_promotions,
        PARTITIONS as u64
    );
    assert_eq!(after.partitions_promoted, PARTITIONS as u64);
    assert!(after.spill_bytes_read > 0);
    // Promotion moved the frames off disk and the table is resident again.
    assert_eq!(spill.spilled_partition_count(), 0);
    assert_eq!(spill.disk_bytes(), 0);
    assert!(after.memstore_bytes > before.memstore_bytes);
    std::fs::remove_dir_all(&dir).ok();
}

/// Crash-mid-spill recovery: truncated and corrupted spill frames are
/// poisoned on promotion and the partitions fall back to lineage
/// recompute — the query sees byte-identical rows on every execution
/// path, never an error.
#[test]
fn corrupt_or_truncated_spill_frames_fall_back_to_lineage() {
    let dir = scratch_dir("corrupt");
    let server = SharkServer::new(ServerConfig::default().with_spill_dir(&dir));
    register_mixed(&server, "crash_t");
    // Pristine twin with the identical generator — the reference rows.
    register_mixed(&server, "crash_ref");
    for t in ["crash_t", "crash_ref"] {
        server.load_table(t).unwrap();
    }
    let vectorized = server.session();
    let mut row_path = server.session();
    let mut row_exec = ExecConfig::shark();
    row_exec.vectorized = false;
    row_path.set_exec_config(row_exec);

    let query_t = "SELECT k, grp, amount FROM crash_t WHERE amount > 10.0";
    let query_ref = "SELECT k, grp, amount FROM crash_ref WHERE amount > 10.0";
    let reference = fetch_blocking(&row_path, query_ref);
    assert!(!reference.is_empty());

    // Sabotage two frames per round: one truncated mid-write (the crash
    // window this tier's atomic-rename protocol is designed around, were a
    // rename itself interrupted), one bit-flipped (checksum mismatch).
    let sabotage = |server: &SharkServer| {
        assert_eq!(
            demoted_partition_count(&server.demote_table("crash_t")),
            PARTITIONS
        );
        let mut frames: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "spill"))
            .collect();
        frames.sort();
        assert_eq!(frames.len(), PARTITIONS);
        // Truncate the first frame to a stub.
        let bytes = std::fs::read(&frames[0]).unwrap();
        std::fs::write(&frames[0], &bytes[..bytes.len().min(10)]).unwrap();
        // Flip a payload byte in the second — the length is intact but the
        // checksum no longer matches.
        let mut bytes = std::fs::read(&frames[1]).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&frames[1], &bytes).unwrap();
    };

    let mut poisoned_so_far = 0;
    for (context, run) in [
        (
            "corrupt blocking vectorized",
            &(|| fetch_blocking(&vectorized, query_t)) as &dyn Fn() -> Vec<Row>,
        ),
        ("corrupt streamed vectorized", &|| {
            fetch_streamed(&vectorized, query_t)
        }),
        ("corrupt blocking row", &|| {
            fetch_blocking(&row_path, query_t)
        }),
        ("corrupt streamed row", &|| {
            fetch_streamed(&row_path, query_t)
        }),
    ] {
        sabotage(&server);
        let before = server.report();
        assert_same(run(), reference.clone(), query_t, context);
        let after = server.report();
        poisoned_so_far += 2;
        assert_eq!(
            after.spill_poisoned_files, poisoned_so_far,
            "{context}: each round poisons exactly the two sabotaged frames"
        );
        assert_eq!(
            after.partition_rebuilds - before.partition_rebuilds,
            2,
            "{context}: the two poisoned partitions recompute from lineage"
        );
        assert_eq!(
            after.partition_promotions - before.partition_promotions,
            (PARTITIONS - 2) as u64,
            "{context}: the intact frames promote"
        );
    }
    // Poisoned frames were deleted, not left to poison the next promotion.
    assert_eq!(server.spill().unwrap().spilled_partition_count(), 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// Spill-disk-budget displacement: when the tier's own budget cannot hold
/// every demoted frame, the coldest are deleted and those partitions
/// degrade to lineage recompute — still never a query error.
#[test]
fn tight_spill_budget_displaces_frames_and_queries_still_serve() {
    let dir = scratch_dir("budget");
    // Budget ≈ two frames: demoting six partitions must displace most.
    let budget = tight_budget();
    let server = SharkServer::new(
        ServerConfig::default()
            .with_spill_dir(&dir)
            .with_spill_budget(budget),
    );
    register_mixed(&server, "tight_t");
    register_mixed(&server, "tight_ref");
    for t in ["tight_t", "tight_ref"] {
        server.load_table(t).unwrap();
    }
    let session = server.session();
    let reference = fetch_blocking(&session, "SELECT k, grp, amount FROM tight_ref");

    server.demote_table("tight_t");
    let spill = server.spill().unwrap();
    assert!(
        spill.disk_bytes() <= budget,
        "disk use {} exceeds the spill budget {budget}",
        spill.disk_bytes()
    );
    assert!(
        spill.displaced_partitions() > 0,
        "a six-partition demotion into a two-frame budget must displace"
    );

    let rows = fetch_blocking(&session, "SELECT k, grp, amount FROM tight_t");
    assert_eq!(rows, reference);
    let report = server.report();
    assert!(report.partition_promotions > 0, "surviving frames promoted");
    assert!(
        report.partition_rebuilds > 0,
        "displaced partitions recomputed from lineage"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Pin hygiene (the PR's bug sweep): failed blocking queries, failed
/// streams, plan errors, and streams abandoned mid-consumption must all
/// release their table pins — afterwards the table is fully demotable.
#[test]
fn failed_and_abandoned_queries_release_their_pins() {
    let dir = scratch_dir("pins");
    let server = SharkServer::new(ServerConfig::default().with_spill_dir(&dir));
    register_mixed(&server, "pins_t");
    server.load_table("pins_t").unwrap();
    let mut session = server.session();
    session.register_udf("explode_after_p0", |args| {
        let k = args[0].as_int().unwrap_or(0);
        if k >= ROWS_PER_PARTITION as i64 {
            panic!("boom on k {k}");
        }
        args[0].clone()
    });

    // Blocking query whose execution panics on the caller thread — the
    // exact unwind the RAII pin guard exists for.
    let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        session.sql("SELECT explode_after_p0(k) FROM pins_t")
    }));
    assert!(
        panicked.is_err() || panicked.is_ok_and(|r| r.is_err()),
        "the exploding UDF must fail the blocking query"
    );
    assert!(
        server.pinned_tables().is_empty(),
        "failed blocking query leaked pins: {:?}",
        server.pinned_tables()
    );

    // Stream that errors mid-consumption: partition 0 delivers, then the
    // UDF explodes. Drain until the error, then drop the cursor.
    {
        let mut stream = session
            .sql_stream("SELECT explode_after_p0(k) FROM pins_t")
            .unwrap();
        let mut saw_error = false;
        loop {
            match stream.next_batch() {
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(_) => {
                    saw_error = true;
                    break;
                }
            }
        }
        assert!(saw_error, "the exploding UDF must surface mid-stream");
    }
    assert!(
        server.pinned_tables().is_empty(),
        "failed stream leaked pins: {:?}",
        server.pinned_tables()
    );

    // Plan error after parse (unknown column) — the pre-cursor window.
    assert!(session
        .sql_stream("SELECT no_such_column FROM pins_t")
        .is_err());
    assert!(server.pinned_tables().is_empty());

    // Stream abandoned after one batch.
    {
        let mut stream = session.sql_stream("SELECT k FROM pins_t").unwrap();
        assert!(stream.next_batch().unwrap().is_some());
    }
    assert!(
        server.pinned_tables().is_empty(),
        "abandoned stream leaked pins: {:?}",
        server.pinned_tables()
    );

    // With every pin released the table is fully demotable.
    let events = server.demote_table("pins_t");
    assert_eq!(
        demoted_partition_count(&events),
        PARTITIONS,
        "a leaked pin would block demotion: {events:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Owner-share hygiene (the PR's bug sweep): shares of a co-owned table
/// always sum to its resident bytes, and closing a session re-apportions
/// its share to the survivors instead of leaving it stranded.
#[test]
fn closing_a_session_reapportions_shared_table_bytes() {
    let server = SharkServer::new(ServerConfig::default());
    register_mixed(&server, "shared_t");
    let a = server.session();
    let b = server.session();
    a.load_table("shared_t").unwrap();
    b.load_table("shared_t").unwrap();

    let table_bytes = server.report().memstore_bytes;
    assert!(table_bytes > 0);
    assert_eq!(
        a.resident_bytes() + b.resident_bytes(),
        table_bytes,
        "owner shares must sum exactly to the table's resident bytes"
    );

    drop(b);
    assert_eq!(
        a.resident_bytes(),
        table_bytes,
        "the surviving owner absorbs the closed session's share"
    );
}

/// Memory-budget enforcement with a spill tier: pressure demotes instead
/// of dropping, measured residency lands at or under the budget, and a
/// later scan of the demoted table still returns exact rows.
#[test]
fn budget_pressure_demotes_and_scans_promote_back() {
    let dir = scratch_dir("pressure");
    let budget = 4 * 1024;
    let server = SharkServer::new(
        ServerConfig::default()
            .with_spill_dir(&dir)
            .with_memory_budget(budget),
    );
    register_mixed(&server, "pressure_t");
    let session = server.session();
    session.load_table("pressure_t").unwrap();

    let report = server.report();
    assert!(
        report.memstore_bytes <= budget,
        "enforcement left {} resident bytes over the {} budget",
        report.memstore_bytes,
        budget
    );
    assert!(
        report.partitions_demoted > 0,
        "pressure with a spill tier must demote, not drop"
    );

    let total = (PARTITIONS * ROWS_PER_PARTITION) as i64;
    let rows = fetch_blocking(&session, "SELECT COUNT(*), SUM(k) FROM pressure_t");
    assert_eq!(rows, vec![row![total, (0..total).sum::<i64>()]]);
    let after = server.report();
    assert!(after.partition_promotions > 0 || after.partition_rebuilds > 0);
    // Query-completion enforcement pushed residency back under budget.
    assert!(after.memstore_bytes <= budget);
    std::fs::remove_dir_all(&dir).ok();
}
