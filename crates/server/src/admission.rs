//! Admission control: a fair FIFO query queue bounding both the number of
//! in-flight queries and the queue depth behind them.
//!
//! Every query asks for a permit before executing. If fewer than
//! `max_concurrent` queries are running and nobody is queued ahead, the
//! permit is granted immediately; otherwise the caller blocks in
//! ticket-number order (no barging — a long queue cannot be starved by a
//! freshly arrived fast query). When the queue is already `max_queued` deep
//! the query is rejected outright, which is the back-pressure signal an
//! overloaded warehouse front-end needs to shed load instead of collapsing.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a permit was not granted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The wait queue is at `max_queued`; the caller should retry later.
    QueueFull {
        /// Configured queue-depth bound that was hit.
        max_queued: usize,
    },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::QueueFull { max_queued } => {
                write!(
                    f,
                    "admission queue full ({max_queued} queries already waiting)"
                )
            }
        }
    }
}

struct AdmissionState {
    running: usize,
    /// Tickets of waiting queries, oldest first.
    queue: VecDeque<u64>,
    next_ticket: u64,
    peak_running: usize,
    peak_queued: usize,
}

/// Bounds in-flight queries and queue depth; grants permits FIFO.
pub struct AdmissionController {
    max_concurrent: usize,
    max_queued: usize,
    state: Mutex<AdmissionState>,
    admitted: Condvar,
}

impl AdmissionController {
    /// Create a controller admitting at most `max_concurrent` queries with
    /// at most `max_queued` waiting behind them.
    pub fn new(max_concurrent: usize, max_queued: usize) -> AdmissionController {
        AdmissionController {
            max_concurrent: max_concurrent.max(1),
            max_queued,
            state: Mutex::new(AdmissionState {
                running: 0,
                queue: VecDeque::new(),
                next_ticket: 0,
                peak_running: 0,
                peak_queued: 0,
            }),
            admitted: Condvar::new(),
        }
    }

    /// Block until admitted (or reject immediately when the queue is full).
    /// Returns the permit and how long this query waited in the queue.
    pub fn acquire(&self) -> Result<(AdmissionPermit<'_>, Duration), AdmissionError> {
        let started = Instant::now();
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.running < self.max_concurrent && state.queue.is_empty() {
            state.running += 1;
            state.peak_running = state.peak_running.max(state.running);
            return Ok((AdmissionPermit { controller: self }, started.elapsed()));
        }
        if state.queue.len() >= self.max_queued {
            return Err(AdmissionError::QueueFull {
                max_queued: self.max_queued,
            });
        }
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        state.queue.push_back(ticket);
        state.peak_queued = state.peak_queued.max(state.queue.len());
        loop {
            state = self.admitted.wait(state).unwrap_or_else(|e| e.into_inner());
            if state.running < self.max_concurrent && state.queue.front() == Some(&ticket) {
                state.queue.pop_front();
                state.running += 1;
                state.peak_running = state.peak_running.max(state.running);
                // More slots may be free for the next ticket in line.
                self.admitted.notify_all();
                return Ok((AdmissionPermit { controller: self }, started.elapsed()));
            }
        }
    }

    /// Queries currently executing.
    pub fn running(&self) -> usize {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).running
    }

    /// Queries currently waiting.
    pub fn queued(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .queue
            .len()
    }

    /// Highest number of simultaneously executing queries observed.
    pub fn peak_running(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .peak_running
    }

    /// Deepest queue observed.
    pub fn peak_queued(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .peak_queued
    }

    fn release(&self) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.running = state.running.saturating_sub(1);
        drop(state);
        self.admitted.notify_all();
    }
}

/// Holds one execution slot; released (and the next query admitted) on drop.
pub struct AdmissionPermit<'a> {
    controller: &'a AdmissionController,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        self.controller.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn grants_up_to_max_concurrent_immediately() {
        let ctrl = AdmissionController::new(2, 8);
        let (p1, w1) = ctrl.acquire().unwrap();
        let (p2, _) = ctrl.acquire().unwrap();
        assert!(w1 < Duration::from_secs(1));
        assert_eq!(ctrl.running(), 2);
        drop(p1);
        assert_eq!(ctrl.running(), 1);
        drop(p2);
        assert_eq!(ctrl.running(), 0);
        assert_eq!(ctrl.peak_running(), 2);
    }

    #[test]
    fn rejects_when_queue_is_full() {
        let ctrl = Arc::new(AdmissionController::new(1, 1));
        let slot = ctrl.acquire().unwrap();
        // Fill the single queue spot from another thread.
        let ctrl2 = ctrl.clone();
        let waiter = std::thread::spawn(move || {
            let (_p, wait) = ctrl2.acquire().unwrap();
            wait
        });
        while ctrl.queued() < 1 {
            std::thread::yield_now();
        }
        // Queue full: immediate rejection.
        match ctrl.acquire() {
            Err(AdmissionError::QueueFull { max_queued }) => assert_eq!(max_queued, 1),
            other => panic!(
                "expected QueueFull, got {other:?}",
                other = other.map(|_| ())
            ),
        }
        drop(slot);
        let waited = waiter.join().unwrap();
        assert!(waited > Duration::ZERO);
        assert_eq!(ctrl.peak_queued(), 1);
    }

    #[test]
    fn admission_is_fifo_fair() {
        let ctrl = Arc::new(AdmissionController::new(1, 16));
        let slot = ctrl.acquire().unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for i in 0..5 {
            // Start waiters one at a time so their ticket order is fixed.
            let ctrl2 = ctrl.clone();
            let order2 = order.clone();
            handles.push(std::thread::spawn(move || {
                let (_p, _) = ctrl2.acquire().unwrap();
                order2.lock().unwrap().push(i);
            }));
            while ctrl.queued() < i + 1 {
                std::thread::yield_now();
            }
        }
        drop(slot);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn never_exceeds_the_concurrency_bound() {
        let ctrl = Arc::new(AdmissionController::new(3, 64));
        let live = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..16 {
            let ctrl2 = ctrl.clone();
            let live2 = live.clone();
            handles.push(std::thread::spawn(move || {
                let (_p, _) = ctrl2.acquire().unwrap();
                let now = live2.fetch_add(1, Ordering::SeqCst) + 1;
                assert!(now <= 3, "concurrency bound violated: {now}");
                std::thread::sleep(Duration::from_millis(2));
                live2.fetch_sub(1, Ordering::SeqCst);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(ctrl.peak_running() <= 3);
        assert_eq!(ctrl.running(), 0);
    }
}
