//! The multi-session query server.
//!
//! [`SharkServer`] owns exactly one [`RddContext`] (simulated cluster +
//! shuffle + RDD cache), one shared [`Catalog`] (tables + columnar
//! memstore), an admission controller and a memory-budgeted memstore
//! manager. [`SharkServer::session`] hands out cheap [`SessionHandle`]s;
//! each handle owns a private `SqlSession` (its own UDFs and exec config)
//! over the shared state, so queries from different sessions read the same
//! cached tables and execute concurrently on their callers' threads, gated
//! only by admission control.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use shark_common::{Result, SharkError};
use shark_rdd::{RddConfig, RddContext};
use shark_sql::exec::LoadReport;
use shark_sql::{Catalog, ExecConfig, QueryResult, SqlSession, TableMeta};

use crate::admission::AdmissionController;
use crate::memstore::MemstoreManager;
use crate::metrics::{MetricsRegistry, QueryMetrics, ServerReport};

/// Configuration of a [`SharkServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The shared cluster/context configuration.
    pub rdd: RddConfig,
    /// Default execution configuration new sessions start with.
    pub exec: ExecConfig,
    /// Memory budget for cached tables + cached RDDs, in (in-process) bytes.
    pub memory_budget_bytes: u64,
    /// Maximum queries executing simultaneously.
    pub max_concurrent_queries: usize,
    /// Maximum queries waiting behind them before rejection.
    pub max_queued_queries: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            rdd: RddConfig::default(),
            exec: ExecConfig::shark(),
            memory_budget_bytes: u64::MAX,
            max_concurrent_queries: 4,
            max_queued_queries: 64,
        }
    }
}

impl ServerConfig {
    /// Set the memory budget.
    pub fn with_memory_budget(mut self, bytes: u64) -> ServerConfig {
        self.memory_budget_bytes = bytes;
        self
    }

    /// Set the admission bounds.
    pub fn with_admission(mut self, concurrent: usize, queued: usize) -> ServerConfig {
        self.max_concurrent_queries = concurrent;
        self.max_queued_queries = queued;
        self
    }
}

pub(crate) struct ServerShared {
    ctx: RddContext,
    catalog: Arc<Catalog>,
    exec: ExecConfig,
    admission: AdmissionController,
    memstore: MemstoreManager,
    metrics: MetricsRegistry,
    next_session_id: AtomicU64,
    next_query_id: AtomicU64,
}

/// A shared-everything warehouse server handing out concurrent sessions.
#[derive(Clone)]
pub struct SharkServer {
    shared: Arc<ServerShared>,
}

impl SharkServer {
    /// Start a server from a configuration.
    pub fn new(config: ServerConfig) -> SharkServer {
        SharkServer {
            shared: Arc::new(ServerShared {
                ctx: RddContext::new(config.rdd),
                catalog: Arc::new(Catalog::new()),
                exec: config.exec,
                admission: AdmissionController::new(
                    config.max_concurrent_queries,
                    config.max_queued_queries,
                ),
                memstore: MemstoreManager::new(config.memory_budget_bytes),
                metrics: MetricsRegistry::default(),
                next_session_id: AtomicU64::new(1),
                next_query_id: AtomicU64::new(1),
            }),
        }
    }

    /// A server with default configuration (tiny local cluster, unbounded
    /// memory, 4-way admission).
    pub fn local() -> SharkServer {
        SharkServer::new(ServerConfig::default())
    }

    /// Open a new session. Sessions are cheap; open one per user/thread.
    pub fn session(&self) -> SessionHandle {
        let id = self.shared.next_session_id.fetch_add(1, Ordering::Relaxed);
        SessionHandle {
            id,
            sql: SqlSession::with_catalog(
                self.shared.ctx.clone(),
                self.shared.exec.clone(),
                self.shared.catalog.clone(),
            ),
            shared: self.shared.clone(),
        }
    }

    /// The shared catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.shared.catalog
    }

    /// The shared RDD context.
    pub fn context(&self) -> &RddContext {
        &self.shared.ctx
    }

    /// Register a base table in the shared catalog (admin path — not gated
    /// by admission control).
    pub fn register_table(&self, table: TableMeta) -> Arc<TableMeta> {
        self.shared.catalog.register(table)
    }

    /// Eagerly load a cached table, then enforce the memory budget (the
    /// load itself may push residency over it).
    pub fn load_table(&self, name: &str) -> Result<LoadReport> {
        let table = self.shared.catalog.get(name)?;
        // Pin (and touch) before loading so a concurrent enforcement cannot
        // evict the table out from under the load.
        self.shared.memstore.pin(std::slice::from_ref(&table.name));
        let report = shark_sql::exec::load_table(&self.shared.ctx, &table);
        self.shared
            .memstore
            .unpin(std::slice::from_ref(&table.name));
        self.shared
            .memstore
            .enforce(&self.shared.catalog, self.shared.ctx.cache());
        report
    }

    /// Current resident bytes charged against the budget.
    pub fn resident_bytes(&self) -> u64 {
        self.shared
            .memstore
            .resident_bytes(&self.shared.catalog, self.shared.ctx.cache())
    }

    /// Aggregate a server-level report over everything run so far.
    pub fn report(&self) -> ServerReport {
        let shared = &self.shared;
        let mut report = shared.metrics.aggregate();
        report.peak_concurrent_queries = shared.admission.peak_running();
        report.peak_queued_queries = shared.admission.peak_queued();
        report.evictions = shared.memstore.evictions();
        report.evicted_bytes = shared.memstore.evicted_bytes();
        report.lineage_recomputes = shared.memstore.lineage_recomputes();
        report.memstore_bytes = shared.catalog.memstore_bytes();
        report.rdd_cache_bytes = shared.ctx.cache().total_bytes();
        report.memory_budget_bytes = shared.memstore.budget_bytes();
        report
    }

    /// The raw per-query log, in completion order.
    pub fn query_log(&self) -> Vec<QueryMetrics> {
        self.shared.metrics.query_log()
    }
}

/// The result of a query run through a session: the rows plus what the
/// serving layer observed about the run.
#[derive(Debug, Clone)]
pub struct SessionQueryResult {
    /// The query result proper.
    pub result: QueryResult,
    /// Serving-layer metrics for this query.
    pub metrics: QueryMetrics,
}

/// One user's handle onto the shared server.
pub struct SessionHandle {
    id: u64,
    sql: SqlSession,
    shared: Arc<ServerShared>,
}

impl SessionHandle {
    /// This session's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Register a UDF visible only to this session.
    pub fn register_udf<F>(&mut self, name: &str, f: F)
    where
        F: Fn(&[shark_common::Value]) -> shark_common::Value + Send + Sync + 'static,
    {
        self.sql.register_udf(name, f);
    }

    /// Replace this session's execution configuration.
    pub fn set_exec_config(&mut self, exec: ExecConfig) {
        self.sql.set_exec_config(exec);
    }

    /// Execute a SQL statement under admission control, returning the rows
    /// plus per-query serving metrics. Fails fast with
    /// [`SharkError::Execution`] when the admission queue is full.
    pub fn sql(&self, text: &str) -> Result<SessionQueryResult> {
        let shared = &self.shared;
        // Parse up front so we know which tables to touch/pin — and so a
        // syntactically invalid query never occupies an execution slot.
        // Parse failures still count as failed queries in the metrics.
        let statement = match shark_sql::parser::parse(text) {
            Ok(statement) => statement,
            Err(err) => {
                shared.metrics.record(QueryMetrics {
                    session_id: self.id,
                    query_id: shared.next_query_id.fetch_add(1, Ordering::Relaxed),
                    statement: text.to_string(),
                    queue_wait: std::time::Duration::ZERO,
                    exec_time: std::time::Duration::ZERO,
                    sim_seconds: 0.0,
                    cache_hit_bytes: 0,
                    recomputed_tables: 0,
                    evictions_triggered: 0,
                    failed: true,
                });
                return Err(err);
            }
        };
        let tables = statement.referenced_tables();

        let (permit, queue_wait) = match shared.admission.acquire() {
            Ok(admitted) => admitted,
            Err(err) => {
                shared.metrics.record_rejection(self.id);
                return Err(SharkError::Execution(err.to_string()));
            }
        };
        let recomputed_tables = shared.memstore.pin(&tables);
        let cache_hit_bytes: u64 = tables
            .iter()
            .filter_map(|name| shared.catalog.get(name).ok())
            .filter_map(|t| t.cached.as_ref().map(|m| m.memory_bytes()))
            .sum();
        let exec_started = Instant::now();
        let result = self.sql.execute_statement(&statement);
        let exec_time = exec_started.elapsed();
        shared.memstore.unpin(&tables);
        if result.is_ok() {
            if let shark_sql::ast::Statement::DropTable { name } = &statement {
                // The table is gone from the catalog; clear its LRU/pin/
                // recompute bookkeeping so a future table reusing the name
                // starts clean.
                shared.memstore.forget(&name.to_lowercase());
            }
        }
        // The query may have grown the memstore (lazy loads, lineage
        // rebuilds, CREATE TABLE … cached): re-enforce the budget while we
        // still hold the permit so concurrent enforcement stays bounded.
        let evictions = shared.memstore.enforce(&shared.catalog, shared.ctx.cache());
        drop(permit);

        let metrics = QueryMetrics {
            session_id: self.id,
            query_id: shared.next_query_id.fetch_add(1, Ordering::Relaxed),
            statement: text.to_string(),
            queue_wait,
            exec_time,
            sim_seconds: result.as_ref().map(|r| r.sim_seconds).unwrap_or(0.0),
            cache_hit_bytes,
            recomputed_tables,
            evictions_triggered: evictions.len(),
            failed: result.is_err(),
        };
        shared.metrics.record(metrics.clone());
        Ok(SessionQueryResult {
            result: result?,
            metrics,
        })
    }

    /// Eagerly load a cached table through this session (admission-gated
    /// like any other statement would be).
    pub fn load_table(&self, name: &str) -> Result<LoadReport> {
        let shared = &self.shared;
        let (permit, _wait) = shared
            .admission
            .acquire()
            .map_err(|e| SharkError::Execution(e.to_string()))?;
        // Pin (and touch) before loading so a concurrent enforcement cannot
        // evict the table out from under the load.
        let lowered = name.to_lowercase();
        shared.memstore.pin(std::slice::from_ref(&lowered));
        let report = self.sql.load_table(name);
        shared.memstore.unpin(std::slice::from_ref(&lowered));
        shared.memstore.enforce(&shared.catalog, shared.ctx.cache());
        drop(permit);
        report
    }
}
