//! The multi-session query server.
//!
//! [`SharkServer`] owns exactly one [`RddContext`] (simulated cluster +
//! shuffle + RDD cache), one shared [`Catalog`] (tables + columnar
//! memstore), an admission controller and a memory-budgeted memstore
//! manager. [`SharkServer::session`] hands out cheap [`SessionHandle`]s;
//! each handle owns a private `SqlSession` (its own UDFs and exec config)
//! over the shared state, so queries from different sessions read the same
//! cached tables and execute concurrently on their callers' threads, gated
//! only by admission control.
//!
//! When a spill directory is configured the server is also **durable**:
//! catalog DDL and spill-tier movements are journaled to a write-ahead log
//! (see [`crate::wal`]) at query boundaries, periodically folded into a
//! catalog snapshot + spill manifest, and [`SharkServer::restore`] brings
//! a new process back to the same catalog epoch with demoted partitions
//! re-adopted — servable at I/O cost instead of recomputed from lineage.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use shark_common::{Result, Row, Schema, SharkError};
use shark_rdd::{RddConfig, RddContext};
use shark_sql::exec::LoadReport;
use shark_sql::{
    Catalog, ExecConfig, PlanCache, QueryResult, QueryStream, RowGenerator, SqlSession,
    StreamProgress, TableMeta,
};

use crate::admission::{AdmissionController, AdmissionPermit};
use crate::memstore::{EvictionEvent, MemstoreManager};
use crate::metrics::{MetricsRegistry, QueryMetrics, ServerReport};
use crate::net::{NetConfig, NetCounters, NetServer};
use crate::spill::{SpillEvent, SpillManager};
use crate::wal::{
    read_manifest, read_snapshot, recovery_metrics, replay_wal, write_manifest, write_snapshot,
    ManifestEntry, SnapshotFile, SpillManifest, TableRecord, WalRecord, WalWriter, MANIFEST_FILE,
    SNAPSHOT_FILE, WAL_FILE,
};

/// Configuration of a [`SharkServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The shared cluster/context configuration.
    pub rdd: RddConfig,
    /// Default execution configuration new sessions start with.
    pub exec: ExecConfig,
    /// Memory budget for cached tables + cached RDDs, in (in-process) bytes.
    pub memory_budget_bytes: u64,
    /// Per-session memory quota, layered under the global budget: each
    /// session is charged for the tables it loaded or created (first loader
    /// owns), and a session over its quota has *its own* least-recently-used
    /// partitions evicted first. `u64::MAX` = unlimited.
    pub session_mem_quota_bytes: u64,
    /// Maximum queries executing simultaneously.
    pub max_concurrent_queries: usize,
    /// Maximum queries waiting behind them before rejection.
    pub max_queued_queries: usize,
    /// Aggregate prefetch budget: the sum of the prefetch depths of all
    /// open streaming cursors may not exceed this, so speculative work
    /// stays bounded by the same admission story that bounds in-flight
    /// queries. A cursor asking for more is granted what remains (possibly
    /// 0 — serial streaming, never rejection).
    pub max_total_prefetch: usize,
    /// Worker threads of the process-wide work-stealing executor every
    /// query's tasks run on. `None` leaves the size to the
    /// `SHARK_EXECUTOR_THREADS` environment variable (falling back to the
    /// host's parallelism). The pool is process-wide and sized once: the
    /// first server to start wins, later values are ignored.
    pub executor_threads: Option<usize>,
    /// Directory for the spill-to-disk demotion tier. When set, budget and
    /// quota evictions *demote* table partitions — the compressed columnar
    /// form is written here and faulted back in by the next scan at I/O
    /// cost — instead of dropping them to lineage recompute. `None`
    /// disables the tier (the pre-spill behaviour). An unusable directory
    /// also just disables the tier; it never fails queries.
    pub spill_dir: Option<PathBuf>,
    /// Disk budget for the spill tier. When spilled frames exceed it, the
    /// coldest are deleted (those partitions degrade to lineage recompute).
    pub spill_budget_bytes: u64,
    /// How many catalog-WAL records may accumulate before the server folds
    /// them into a fresh snapshot + manifest checkpoint. Lower values bound
    /// replay work at restore; higher values amortize checkpoint I/O.
    /// Only meaningful when `spill_dir` is set (the WAL lives there).
    pub wal_snapshot_every_records: u64,
    /// Capacity of the shared prepared-statement / plan cache (distinct
    /// statements). Every session participates: repeated statements skip
    /// parse and — at an unchanged catalog epoch — planning too. `0`
    /// disables the cache.
    pub plan_cache_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            rdd: RddConfig::default(),
            exec: ExecConfig::shark(),
            memory_budget_bytes: u64::MAX,
            session_mem_quota_bytes: u64::MAX,
            max_concurrent_queries: 4,
            max_queued_queries: 64,
            max_total_prefetch: 8,
            executor_threads: None,
            spill_dir: None,
            spill_budget_bytes: u64::MAX,
            wal_snapshot_every_records: 256,
            plan_cache_capacity: 128,
        }
    }
}

impl ServerConfig {
    /// Set the memory budget.
    pub fn with_memory_budget(mut self, bytes: u64) -> ServerConfig {
        self.memory_budget_bytes = bytes;
        self
    }

    /// Set the per-session memory quota.
    pub fn with_session_quota(mut self, bytes: u64) -> ServerConfig {
        self.session_mem_quota_bytes = bytes;
        self
    }

    /// Set the admission bounds.
    pub fn with_admission(mut self, concurrent: usize, queued: usize) -> ServerConfig {
        self.max_concurrent_queries = concurrent;
        self.max_queued_queries = queued;
        self
    }

    /// Set the aggregate streaming-prefetch budget.
    pub fn with_prefetch_budget(mut self, total: usize) -> ServerConfig {
        self.max_total_prefetch = total;
        self
    }

    /// Size the process-wide work-stealing executor (first server wins).
    pub fn with_executor_threads(mut self, threads: usize) -> ServerConfig {
        self.executor_threads = Some(threads);
        self
    }

    /// Enable the spill-to-disk demotion tier under `dir`.
    pub fn with_spill_dir(mut self, dir: impl Into<PathBuf>) -> ServerConfig {
        self.spill_dir = Some(dir.into());
        self
    }

    /// Cap the spill tier's disk usage.
    pub fn with_spill_budget(mut self, bytes: u64) -> ServerConfig {
        self.spill_budget_bytes = bytes;
        self
    }

    /// Checkpoint the catalog WAL every `records` committed records.
    pub fn with_wal_snapshot_every(mut self, records: u64) -> ServerConfig {
        self.wal_snapshot_every_records = records;
        self
    }

    /// Size the shared prepared-statement / plan cache (0 disables it).
    pub fn with_plan_cache_capacity(mut self, statements: usize) -> ServerConfig {
        self.plan_cache_capacity = statements;
        self
    }
}

/// The durable-catalog machinery of one server: the open WAL appender plus
/// the checkpoint cadence. Lives behind one mutex so WAL batches from
/// concurrent query boundaries serialize — the journals are drained *under*
/// this lock, which is what keeps a table's `Created` record ahead of its
/// partitions' `Demoted` records in the log.
struct Durability {
    /// Directory the WAL, snapshot and manifest live in (the spill dir).
    dir: PathBuf,
    /// The open WAL appender (recreated fresh by every checkpoint).
    wal: WalWriter,
    /// Fold the WAL into a snapshot after this many committed records.
    snapshot_every: u64,
    /// Records committed since the last checkpoint.
    records_since_snapshot: u64,
}

/// What one restore observed, frozen at construction and surfaced through
/// [`ServerReport`].
#[derive(Debug, Clone, Default)]
struct RecoveryStats {
    restored: bool,
    wal_records_replayed: u64,
    torn_wal_tail: bool,
    tables_restored: u64,
    placeholder_tables: u64,
    frames_adopted: u64,
    frames_rejected: u64,
    orphans_swept: u64,
}

pub(crate) struct ServerShared {
    ctx: RddContext,
    catalog: Arc<Catalog>,
    exec: ExecConfig,
    admission: AdmissionController,
    memstore: MemstoreManager,
    metrics: MetricsRegistry,
    next_session_id: AtomicU64,
    next_query_id: AtomicU64,
    max_total_prefetch: usize,
    prefetch_in_use: AtomicUsize,
    /// `Some` when a spill directory is configured and its WAL is writable.
    durability: Option<Mutex<Durability>>,
    /// What the restore that produced this server observed (all-default
    /// for a fresh start).
    recovery: RecoveryStats,
    snapshots_written: AtomicU64,
    wal_append_failures: AtomicU64,
    /// The shared prepared-statement / plan cache every session of this
    /// server participates in (`None` when disabled by configuration).
    plan_cache: Option<Arc<PlanCache>>,
    /// Wire/connection counters of the TCP frontend; all-zero until
    /// [`SharkServer::serve`] is called, so [`SharkServer::report`] always
    /// carries the gauges.
    pub(crate) net: NetCounters,
}

impl ServerShared {
    /// Grant as much of `requested` as the aggregate prefetch budget still
    /// allows (possibly 0 — the stream then runs serially, it is never
    /// rejected). The grant must be returned via [`Self::release_prefetch`].
    fn acquire_prefetch(&self, requested: usize) -> usize {
        if requested == 0 {
            return 0;
        }
        loop {
            let used = self.prefetch_in_use.load(Ordering::Relaxed);
            let available = self.max_total_prefetch.saturating_sub(used);
            let grant = requested.min(available);
            if grant == 0 {
                return 0;
            }
            if self
                .prefetch_in_use
                .compare_exchange(used, used + grant, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return grant;
            }
        }
    }

    fn release_prefetch(&self, granted: usize) {
        if granted > 0 {
            self.prefetch_in_use.fetch_sub(granted, Ordering::Relaxed);
        }
    }

    /// Drain the catalog's DDL journal and the spill tier's event journal
    /// into one fsync'd WAL batch. Runs at every query boundary (and at
    /// admin operations that change durable state); a no-op without
    /// durability or when nothing changed. Spill events are stamped with
    /// the *current* epoch — replay does not order by epoch, it applies
    /// records in log order, so a late stamp is harmless.
    fn persist_durable(&self) {
        let Some(durability) = &self.durability else {
            return;
        };
        let mut dur = durability.lock();
        let mut records: Vec<WalRecord> = self
            .catalog
            .drain_ddl()
            .iter()
            .map(WalRecord::from_ddl)
            .collect();
        let epoch = self.catalog.epoch();
        if let Some(spill) = self.memstore.spill() {
            for event in spill.drain_wal_events() {
                records.push(match event {
                    SpillEvent::Demoted {
                        table,
                        partition,
                        table_version,
                        bytes,
                        checksum,
                    } => WalRecord::Demoted {
                        epoch,
                        table,
                        table_version,
                        partition: partition as u64,
                        bytes,
                        checksum,
                    },
                    SpillEvent::Promoted {
                        table,
                        partition,
                        table_version,
                    } => WalRecord::Promoted {
                        epoch,
                        table,
                        table_version,
                        partition: partition as u64,
                    },
                });
            }
        }
        if records.is_empty() {
            return;
        }
        match dur.wal.append_batch(&records) {
            Ok(()) => {
                dur.records_since_snapshot += records.len() as u64;
                if dur.records_since_snapshot >= dur.snapshot_every {
                    self.checkpoint(&mut dur);
                }
            }
            Err(_) => {
                // The journals are already drained, so these records never
                // reach the log. Force a checkpoint: the snapshot captures
                // the full current state, which re-covers whatever the
                // failed append lost.
                self.wal_append_failures.fetch_add(1, Ordering::Relaxed);
                self.checkpoint(&mut dur);
            }
        }
    }

    /// Fold the WAL into fresh durable state: write the spill manifest,
    /// then the catalog snapshot, then start an empty WAL. The order is
    /// the crash-safety argument — a crash before the WAL is recreated
    /// leaves old records in the log, and replaying them *onto* the new
    /// snapshot is idempotent (the snapshot is the fold of exactly those
    /// records). Returns whether the checkpoint fully landed.
    fn checkpoint(&self, dur: &mut Durability) -> bool {
        let entries = self
            .memstore
            .spill()
            .map(|s| s.manifest_entries())
            .unwrap_or_default();
        if write_manifest(&dur.dir.join(MANIFEST_FILE), &SpillManifest { entries }).is_err() {
            self.wal_append_failures.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let snapshot = SnapshotFile {
            epoch: self.catalog.epoch(),
            tables: self
                .catalog
                .table_names()
                .iter()
                .filter_map(|name| self.catalog.get(name).ok())
                .map(|table| TableRecord::from_meta(&table))
                .collect(),
        };
        if write_snapshot(&dur.dir.join(SNAPSHOT_FILE), &snapshot).is_err() {
            self.wal_append_failures.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        match WalWriter::create(dur.dir.join(WAL_FILE)) {
            Ok(wal) => {
                dur.wal = wal;
                dur.records_since_snapshot = 0;
                self.snapshots_written.fetch_add(1, Ordering::Relaxed);
                shark_obs::event(
                    "checkpoint",
                    &[
                        ("epoch", &snapshot.epoch.to_string()),
                        ("tables", &snapshot.tables.len().to_string()),
                    ],
                );
                true
            }
            Err(_) => {
                self.wal_append_failures.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }
}

/// RAII whole-table pins: releases on drop, so a query that panics or
/// errors between pin and unpin can no longer leak its pins and leave the
/// tables unevictable forever. A cursor that must keep the pins alive past
/// the guard's scope takes them over with [`PinGuard::into_tables`].
struct PinGuard<'a> {
    memstore: &'a MemstoreManager,
    tables: Vec<String>,
    armed: bool,
}

impl<'a> PinGuard<'a> {
    /// Pin `tables`; returns the guard plus the recompute signal
    /// [`MemstoreManager::pin`] reports.
    fn pin(memstore: &'a MemstoreManager, tables: Vec<String>) -> (PinGuard<'a>, usize) {
        let recomputes = memstore.pin(&tables);
        (
            PinGuard {
                memstore,
                tables,
                armed: true,
            },
            recomputes,
        )
    }

    /// Disarm the guard and hand the still-pinned tables to the caller,
    /// which becomes responsible for unpinning them (the cursor path).
    fn into_tables(mut self) -> Vec<String> {
        self.armed = false;
        std::mem::take(&mut self.tables)
    }
}

impl Drop for PinGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.memstore.unpin(&self.tables);
        }
    }
}

/// Restore-time hook mapping a restored table's metadata to the row
/// generator to re-attach; `None` leaves the loud placeholder.
type GeneratorResolver<'a> = &'a dyn Fn(&TableRecord) -> Option<RowGenerator>;

/// A shared-everything warehouse server handing out concurrent sessions.
#[derive(Clone)]
pub struct SharkServer {
    shared: Arc<ServerShared>,
}

impl SharkServer {
    /// Start a fresh server from a configuration. Any durable state a
    /// previous incarnation left under the spill directory is deliberately
    /// ignored — and its spill frames swept as orphans; use
    /// [`SharkServer::restore`] to come back warm instead.
    pub fn new(config: ServerConfig) -> SharkServer {
        SharkServer::boot(config, None)
    }

    /// Restore a server from the durable state under the configured spill
    /// directory: load the catalog snapshot, replay the WAL over it
    /// (truncating any torn tail), and re-adopt the spill frames the
    /// manifest + WAL still expect — demoted partitions are servable again
    /// at I/O cost, not recomputed. Restored tables get a placeholder row
    /// generator that panics on first lineage recompute; use
    /// [`SharkServer::restore_with`] to re-attach real generators.
    ///
    /// Fails only when `config.spill_dir` is unset (nowhere to restore
    /// from). Damaged durable state never fails the restore — it degrades:
    /// torn WAL tails are cut, a corrupt snapshot or manifest reads as
    /// empty, and rejected frames fall back to lineage recompute.
    pub fn restore(config: ServerConfig) -> Result<SharkServer> {
        SharkServer::restore_with(config, |_| None)
    }

    /// [`SharkServer::restore`], with a resolver that re-attaches a row
    /// generator to each restored table (generators are code, not data —
    /// they cannot live in the snapshot). Tables the resolver declines get
    /// the loud placeholder generator.
    pub fn restore_with(
        config: ServerConfig,
        resolver: impl Fn(&TableRecord) -> Option<RowGenerator>,
    ) -> Result<SharkServer> {
        if config.spill_dir.is_none() {
            return Err(SharkError::Config(
                "restore requires a spill directory (ServerConfig::with_spill_dir): \
                 the catalog WAL, snapshot and spill manifest live there"
                    .into(),
            ));
        }
        Ok(SharkServer::boot(config, Some(&resolver)))
    }

    /// Shared construction path. `resolver` is `Some` for a restore (replay
    /// durable state before serving) and `None` for a fresh start (sweep
    /// the directory's frames as orphans).
    fn boot(config: ServerConfig, resolver: Option<GeneratorResolver<'_>>) -> SharkServer {
        if let Some(threads) = config.executor_threads {
            shark_rdd::Executor::configure_global(threads);
        }
        let mut memstore = MemstoreManager::new(config.memory_budget_bytes)
            .with_session_quota(config.session_mem_quota_bytes);
        let mut spill = None;
        if let Some(dir) = &config.spill_dir {
            // An unusable spill directory disables the tier (and with it
            // durability) rather than failing server start: queries then
            // see the pre-spill world (eviction = lineage recompute),
            // never an I/O error.
            if let Ok(manager) = SpillManager::create(dir, config.spill_budget_bytes) {
                let manager = Arc::new(manager);
                memstore = memstore.with_spill(manager.clone());
                spill = Some(manager);
            }
        }
        let catalog = Arc::new(Catalog::new());
        let num_nodes = config.rdd.cluster.num_nodes;
        let recovery = match (&spill, resolver) {
            (Some(spill), Some(resolver)) => restore_catalog(&catalog, spill, num_nodes, resolver),
            (Some(spill), None) => {
                // Fresh start: a previous incarnation's frames are orphans
                // here, not recoverable data.
                spill.sweep_orphans();
                RecoveryStats::default()
            }
            _ => RecoveryStats::default(),
        };
        let durability = spill.as_ref().and_then(|spill| {
            // A WAL that cannot be created disables durability the same
            // way an unusable directory disables the tier.
            WalWriter::create(spill.dir().join(WAL_FILE))
                .ok()
                .map(|wal| {
                    Mutex::new(Durability {
                        dir: spill.dir().to_path_buf(),
                        wal,
                        snapshot_every: config.wal_snapshot_every_records.max(1),
                        records_since_snapshot: 0,
                    })
                })
        });
        let ctx = RddContext::new(config.rdd);
        // Observe RDD-cache policy evictions in the unified registry (the
        // table memstore's evictions are counted by the manager itself).
        let rdd_evictions = shark_obs::metrics().counter(
            "shark_rdd_cache_evicted_partitions_total",
            "RDD-cache partitions evicted by the memory budget",
        );
        let rdd_evicted_bytes = shark_obs::metrics().counter(
            "shark_rdd_cache_evicted_bytes_total",
            "RDD-cache bytes evicted by the memory budget",
        );
        ctx.cache()
            .set_eviction_observer(Box::new(move |_rdd, _partition, bytes| {
                rdd_evictions.inc();
                rdd_evicted_bytes.add(bytes);
            }));
        let server = SharkServer {
            shared: Arc::new(ServerShared {
                ctx,
                catalog,
                exec: config.exec,
                admission: AdmissionController::new(
                    config.max_concurrent_queries,
                    config.max_queued_queries,
                ),
                memstore,
                metrics: MetricsRegistry::default(),
                next_session_id: AtomicU64::new(1),
                next_query_id: AtomicU64::new(1),
                max_total_prefetch: config.max_total_prefetch,
                prefetch_in_use: AtomicUsize::new(0),
                durability,
                recovery,
                snapshots_written: AtomicU64::new(0),
                wal_append_failures: AtomicU64::new(0),
                plan_cache: (config.plan_cache_capacity > 0)
                    .then(|| Arc::new(PlanCache::new(config.plan_cache_capacity))),
                net: NetCounters::default(),
            }),
        };
        // Boot checkpoint: snapshot, manifest and (fresh) WAL now agree
        // with the in-memory state, so a crash at any later point replays
        // from here.
        if let Some(dur) = &server.shared.durability {
            server.shared.checkpoint(&mut dur.lock());
        }
        server
    }

    /// Quiesce and persist: demote every cached table's resident
    /// partitions to the spill tier, commit the final WAL batch and write
    /// a checkpoint, so [`SharkServer::restore`] brings the catalog back
    /// warm. A no-op without durability. The server stays usable after —
    /// shutdown is a durability barrier, not a poison pill.
    pub fn shutdown(&self) -> Result<()> {
        let shared = &self.shared;
        if shared.durability.is_none() {
            return Ok(());
        }
        let _span = shark_obs::span("shutdown");
        for table in shared.catalog.cached_tables() {
            shared.memstore.demote_table(&shared.catalog, &table.name);
        }
        shared.persist_durable();
        let Some(dur) = &shared.durability else {
            return Ok(());
        };
        if shared.checkpoint(&mut dur.lock()) {
            Ok(())
        } else {
            Err(SharkError::Execution(
                "shutdown checkpoint failed: the durable catalog state on disk is stale".into(),
            ))
        }
    }

    /// A server with default configuration (tiny local cluster, unbounded
    /// memory, 4-way admission).
    pub fn local() -> SharkServer {
        SharkServer::new(ServerConfig::default())
    }

    /// Open a new session. Sessions are cheap; open one per user/thread.
    pub fn session(&self) -> SessionHandle {
        let id = self.shared.next_session_id.fetch_add(1, Ordering::Relaxed);
        let mut sql = SqlSession::with_catalog(
            self.shared.ctx.clone(),
            self.shared.exec.clone(),
            self.shared.catalog.clone(),
        );
        if let Some(cache) = &self.shared.plan_cache {
            sql.set_plan_cache(cache.clone());
        }
        SessionHandle {
            id,
            sql,
            shared: self.shared.clone(),
        }
    }

    /// Start serving this server's sessions over TCP (see
    /// `docs/wire-protocol.md` for the frame format). Returns the running
    /// frontend; call [`NetServer::shutdown`] to stop accepting, reap every
    /// connection and join the service threads.
    pub fn serve(&self, config: NetConfig) -> Result<NetServer> {
        NetServer::start(self.clone(), config)
    }

    /// The shared plan cache, when enabled.
    pub fn plan_cache(&self) -> Option<&Arc<PlanCache>> {
        self.shared.plan_cache.as_ref()
    }

    /// Wire/connection counters of the TCP frontend (all-zero when
    /// [`SharkServer::serve`] was never called).
    pub(crate) fn net_counters(&self) -> &NetCounters {
        &self.shared.net
    }

    /// The shared catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.shared.catalog
    }

    /// The shared RDD context.
    pub fn context(&self) -> &RddContext {
        &self.shared.ctx
    }

    /// Register a base table in the shared catalog (admin path — not gated
    /// by admission control). Replacing an existing cached table displaces
    /// the old version: its name-keyed bookkeeping (owner, pins, recompute
    /// tracking) is cleared — like a DROP TABLE — and it is reclaimed
    /// immediately unless a pinned snapshot (an in-flight query or open
    /// cursor) still references it.
    pub fn register_table(&self, table: TableMeta) -> Arc<TableMeta> {
        let replacing = self.shared.catalog.contains(&table.name);
        let registered = self.shared.catalog.register(table);
        if replacing {
            self.shared.memstore.forget(&registered.name);
        }
        self.shared.memstore.reclaim_dropped(&self.shared.catalog);
        self.shared.persist_durable();
        registered
    }

    /// Eagerly load a cached table, then enforce the memory budget (the
    /// load itself may push residency over it).
    pub fn load_table(&self, name: &str) -> Result<LoadReport> {
        let table = self.shared.catalog.get(name)?;
        // Pin before loading so a concurrent enforcement cannot evict the
        // table out from under the load. (Recency is tracked by the
        // memtable itself: the load's puts refresh each partition's tick.)
        let (pins, _) = PinGuard::pin(&self.shared.memstore, vec![table.name.clone()]);
        let report = shark_sql::exec::load_table(&self.shared.ctx, &table);
        // Record the exact full-load footprint while every partition is
        // still resident (before enforcement may evict): it is the provable
        // bound the quota-infeasibility admission check keys off.
        self.shared.memstore.record_footprint_if_full(&table);
        drop(pins);
        self.shared
            .memstore
            .enforce(&self.shared.catalog, self.shared.ctx.cache());
        self.shared.persist_durable();
        report
    }

    /// Tables currently pinned by in-flight queries or open cursors.
    pub fn pinned_tables(&self) -> Vec<String> {
        self.shared.memstore.pinned_tables()
    }

    /// Partitions of `table` individually pinned by streaming cursors that
    /// have delivered them, in ascending index order.
    pub fn pinned_partitions(&self, table: &str) -> Vec<usize> {
        self.shared.memstore.pinned_partitions(table)
    }

    /// Queries currently executing (holding admission permits) — streaming
    /// cursors count until exhausted or dropped.
    pub fn running_queries(&self) -> usize {
        self.shared.admission.running()
    }

    /// Prefetch depth currently granted to open streaming cursors, out of
    /// [`ServerConfig::max_total_prefetch`].
    pub fn prefetch_in_use(&self) -> usize {
        self.shared.prefetch_in_use.load(Ordering::Relaxed)
    }

    /// Current resident bytes charged against the budget.
    pub fn resident_bytes(&self) -> u64 {
        self.shared
            .memstore
            .resident_bytes(&self.shared.catalog, self.shared.ctx.cache())
    }

    /// Resident bytes of `DROP TABLE`d versions still pinned by open
    /// catalog snapshots (in-flight queries, open cursors); reclaimed when
    /// the last pin closes.
    pub fn deferred_drop_bytes(&self) -> u64 {
        self.shared.catalog.deferred_drop_bytes()
    }

    /// Reclaim dropped table versions whose last pinning snapshot has been
    /// released (also runs after every query and cursor close). Returns
    /// the reclamations performed.
    pub fn reclaim_dropped(&self) -> Vec<EvictionEvent> {
        self.shared.memstore.reclaim_dropped(&self.shared.catalog)
    }

    /// The spill-to-disk demotion tier, when configured.
    pub fn spill(&self) -> Option<&Arc<SpillManager>> {
        self.shared.memstore.spill()
    }

    /// Demote every unpinned resident partition of one table to the spill
    /// tier (admin path — used to stage demoted residency states for tests
    /// and benchmarks; plain eviction when no tier is configured).
    pub fn demote_table(&self, name: &str) -> Vec<EvictionEvent> {
        let events = self
            .shared
            .memstore
            .demote_table(&self.shared.catalog, name);
        self.shared.persist_durable();
        events
    }

    /// Aggregate a server-level report over everything run so far. Also
    /// performs any reclamation that is already due (a report is an
    /// observation point like a query boundary), so the deferred-drop
    /// numbers it returns are current.
    pub fn report(&self) -> ServerReport {
        let shared = &self.shared;
        shared.memstore.reclaim_dropped(&shared.catalog);
        // A report is a durability point too: whatever the journals hold
        // is committed, so the WAL numbers below are current.
        shared.persist_durable();
        let mut report = shared.metrics.aggregate();
        report.peak_concurrent_queries = shared.admission.peak_running();
        report.peak_queued_queries = shared.admission.peak_queued();
        report.evictions = shared.memstore.evictions();
        report.evicted_partitions = shared.memstore.evicted_partitions();
        report.partial_evictions = shared.memstore.partial_evictions();
        report.evicted_bytes = shared.memstore.evicted_bytes();
        report.lineage_recomputes = shared.memstore.lineage_recomputes();
        report.quota_hits = shared.memstore.quota_hits();
        report.quota_evicted_partitions = shared.memstore.quota_evicted_partitions();
        report.quota_infeasible_rejections = shared.memstore.quota_infeasible_rejections();
        if let Some(cache) = &shared.plan_cache {
            report.plan_cache_enabled = true;
            report.plan_cache_hits = cache.hits();
            report.plan_cache_misses = cache.misses();
            report.plan_cache_stale_plans = cache.stale_plans();
            report.plan_cache_entries = cache.entries() as u64;
            report.plan_cache_capacity = cache.capacity() as u64;
        }
        report.connections_opened = shared.net.opened();
        report.connections_closed = shared.net.closed();
        report.connections_active = shared.net.active();
        report.connections_reaped = shared.net.reaped();
        report.wire_bytes_sent = shared.net.bytes_sent();
        report.wire_bytes_received = shared.net.bytes_received();
        report.net_frames_sent = shared.net.frames_sent();
        report.net_frames_received = shared.net.frames_received();
        report.net_protocol_errors = shared.net.protocol_errors();
        report.net_auth_failures = shared.net.auth_failures();
        report.net_queries = shared.net.queries();
        report.net_prepared_statements = shared.net.prepared_statements();
        report.net_cancels = shared.net.cancels();
        // Live tables' rebuild counters, plus the frozen counts of versions
        // awaiting deferred reclamation, plus the retired counts of
        // versions already reclaimed — a rebuild moves between the three
        // shares as its table is dropped and reclaimed, so the cumulative
        // metric never decreases.
        report.partition_rebuilds = shared.memstore.retired_rebuilds()
            + shared.catalog.deferred_drop_rebuilds()
            + shared
                .catalog
                .cached_tables()
                .iter()
                .filter_map(|t| t.cached.as_ref().map(|m| m.rebuilds()))
                .sum::<u64>();
        report.partition_promotions = shared
            .catalog
            .cached_tables()
            .iter()
            .filter_map(|t| t.cached.as_ref().map(|m| m.promotions()))
            .sum::<u64>();
        if let Some(spill) = shared.memstore.spill() {
            report.spilled_partitions = spill.spilled_partition_count();
            report.spill_disk_bytes = spill.disk_bytes();
            report.spill_budget_bytes = spill.budget_bytes();
            report.partitions_demoted = spill.spilled_partitions();
            report.partitions_promoted = spill.promoted_partitions();
            report.spill_bytes_written = spill.spilled_bytes();
            report.spill_bytes_read = spill.promoted_bytes();
            report.spill_poisoned_files = spill.poisoned_files();
            report.spill_displaced_partitions = spill.displaced_partitions();
        }
        report.wal_enabled = shared.durability.is_some();
        if let Some(dur) = &shared.durability {
            report.wal_records = dur.lock().wal.record_count();
        }
        report.wal_snapshots_written = shared.snapshots_written.load(Ordering::Relaxed);
        report.wal_append_failures = shared.wal_append_failures.load(Ordering::Relaxed);
        report.restored = shared.recovery.restored;
        report.recovery_wal_records_replayed = shared.recovery.wal_records_replayed;
        report.recovery_torn_wal_tail = shared.recovery.torn_wal_tail;
        report.recovery_tables_restored = shared.recovery.tables_restored;
        report.recovery_placeholder_tables = shared.recovery.placeholder_tables;
        report.recovery_frames_adopted = shared.recovery.frames_adopted;
        report.recovery_frames_rejected = shared.recovery.frames_rejected;
        report.recovery_orphans_swept = shared.recovery.orphans_swept;
        report.memstore_bytes = shared.catalog.memstore_bytes();
        report.rdd_cache_bytes = shared.ctx.cache().total_bytes();
        report.memory_budget_bytes = shared.memstore.budget_bytes();
        report.session_quota_bytes = shared.memstore.session_quota_bytes();
        report.catalog_epoch = shared.catalog.epoch();
        report.live_snapshots = shared.catalog.live_snapshots();
        report.deferred_drop_bytes = shared.catalog.deferred_drop_bytes();
        report.deferred_drops_reclaimed = shared.memstore.deferred_drops_reclaimed();
        report.deferred_reclaimed_bytes = shared.memstore.deferred_reclaimed_bytes();
        report
    }

    /// The raw per-query log, in completion order.
    pub fn query_log(&self) -> Vec<QueryMetrics> {
        self.shared.metrics.query_log()
    }
}

/// The result of a query run through a session: the rows plus what the
/// serving layer observed about the run.
#[derive(Debug, Clone)]
pub struct SessionQueryResult {
    /// The query result proper.
    pub result: QueryResult,
    /// Serving-layer metrics for this query.
    pub metrics: QueryMetrics,
}

/// One user's handle onto the shared server.
pub struct SessionHandle {
    id: u64,
    sql: SqlSession,
    shared: Arc<ServerShared>,
}

impl SessionHandle {
    /// This session's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Register a UDF visible only to this session.
    pub fn register_udf<F>(&mut self, name: &str, f: F)
    where
        F: Fn(&[shark_common::Value]) -> shark_common::Value + Send + Sync + 'static,
    {
        self.sql.register_udf(name, f);
    }

    /// Replace this session's execution configuration.
    pub fn set_exec_config(&mut self, exec: ExecConfig) {
        self.sql.set_exec_config(exec);
    }

    /// Set how many result partitions this session's streaming cursors ask
    /// to execute ahead of the consumer. The server may grant less: the sum
    /// of all open cursors' depths is capped by
    /// [`ServerConfig::max_total_prefetch`].
    pub fn set_stream_prefetch(&mut self, depth: usize) {
        self.sql.set_stream_prefetch(depth);
    }

    /// Execute a SQL statement under admission control, returning the rows
    /// plus per-query serving metrics. Fails fast with
    /// [`SharkError::Execution`] when the admission queue is full.
    pub fn sql(&self, text: &str) -> Result<SessionQueryResult> {
        let shared = &self.shared;
        // Parse up front so we know which tables to touch/pin — and so a
        // syntactically invalid query never occupies an execution slot.
        // Parse failures still count as failed queries in the metrics.
        // With a plan cache attached, a repeated statement skips the parser
        // through the cache's (epoch-independent) parse tier.
        let statement = match self.sql.parse_cached(text) {
            Ok(statement) => statement,
            Err(err) => {
                self.record_parse_failure(text);
                return Err(err);
            }
        };
        let tables = pinned_tables_for(&statement);

        // Root span of this query's trace (when query tracing is on). The
        // attach guard puts the trace context on this thread so every
        // engine/scheduler span below nests under it; it is dropped before
        // the root span itself records.
        let mut root = if shark_obs::tracer().is_enabled() {
            let mut span = shark_obs::start_trace("query");
            span.annotate("statement", text);
            span.annotate("session", &self.id.to_string());
            Some(span)
        } else {
            None
        };
        let _trace = root.as_ref().map(|r| r.context().attach());

        let acquired = {
            // Admission-queue wait as its own span; the always-on histogram
            // counterpart is observed in `MetricsRegistry::record`.
            let _wait = shark_obs::span("admission-wait");
            shared.admission.acquire()
        };
        let (permit, queue_wait) = match acquired {
            Ok(admitted) => admitted,
            Err(err) => {
                if let Some(root) = root.as_mut() {
                    root.annotate("rejected", "true");
                }
                shared.metrics.record_rejection(self.id);
                return Err(SharkError::Execution(err.to_string()));
            }
        };
        // RAII pins: a panic inside the engine unwinds through the guard
        // and still releases them, so the tables stay evictable.
        let (pins, recomputed_tables) = PinGuard::pin(&shared.memstore, tables);
        let cache_hit_bytes = cache_hit_bytes(&shared.catalog, &pins.tables);
        let residency_before = table_residency(&shared.catalog, &pins.tables);
        let exec_started = Instant::now();
        let result = self.sql.execute_statement_cached(text, &statement);
        let exec_time = exec_started.elapsed();
        drop(pins);
        let plan_cache_hit = result.as_ref().map(|(_, hit)| *hit).unwrap_or(false);
        let result = result.map(|(result, _)| result);
        if result.is_ok() {
            match statement.as_ref() {
                shark_sql::ast::Statement::DropTable { name } => {
                    // The table is gone from the catalog; clear its LRU/pin/
                    // recompute/owner bookkeeping so a future table reusing
                    // the name starts clean. Its lineage-rebuild count stays
                    // visible through the catalog's deferred share until the
                    // version is reclaimed, then moves into the retired
                    // total — the server-wide metric never decreases.
                    shared.memstore.forget(&name.to_lowercase());
                }
                shark_sql::ast::Statement::CreateTableAs { name, .. } => {
                    // The new table's resident bytes are charged to the
                    // session that created it.
                    shared.memstore.record_owner(&name.to_lowercase(), self.id);
                }
                _ => {}
            }
        }
        // The query may have grown the memstore (lazy loads, lineage
        // rebuilds, CREATE TABLE … cached): charge any table it faulted in
        // to this session, bring the session back under its own quota (its
        // LRU partitions go first), then re-enforce the global budget while
        // we still hold the permit so concurrent enforcement stays bounded.
        charge_faulted_tables(shared, self.id, &residency_before);
        let quota_events = shared
            .memstore
            .enforce_session_quota(self.id, &shared.catalog);
        let evictions = shared.memstore.enforce(&shared.catalog, shared.ctx.cache());
        // The statement's own snapshot pin is released by now (the engine
        // holds it only for the statement's lifetime), so a DROP TABLE this
        // query performed — or one whose last pinning cursor has since
        // closed — can be reclaimed here.
        shared.memstore.reclaim_dropped(&shared.catalog);
        drop(permit);
        let promotions = shared.memstore.drain_promotions();
        record_enforcement_events(&evictions, &quota_events, &promotions);
        // Commit this query's durable effects (CTAS/DROP, demotions,
        // promotions) before its result is observable.
        shared.persist_durable();

        let metrics = QueryMetrics {
            session_id: self.id,
            query_id: shared.next_query_id.fetch_add(1, Ordering::Relaxed),
            statement: text.to_string(),
            queue_wait,
            exec_time,
            sim_seconds: result.as_ref().map(|r| r.sim_seconds).unwrap_or(0.0),
            // Batch delivery: the whole result arrives when execution ends.
            time_to_first_row: exec_time,
            rows_streamed: result.as_ref().map(|r| r.rows.len() as u64).unwrap_or(0),
            partitions_streamed: 0,
            partitions_total: 0,
            streamed: false,
            prefetch_depth: 0,
            prefetch_hits: 0,
            cache_hit_bytes,
            recomputed_tables,
            evictions_triggered: evictions.len(),
            quota_evictions: quota_events.iter().map(EvictionEvent::partitions).sum(),
            plan_cache_hit,
            failed: result.is_err(),
        };
        if let Some(root) = root.as_mut() {
            root.add_rows(metrics.rows_streamed);
            if metrics.failed {
                root.annotate("failed", "true");
            }
        }
        shared.metrics.record(metrics.clone());
        Ok(SessionQueryResult {
            result: result?,
            metrics,
        })
    }

    /// Execute a SELECT under admission control and return a streaming
    /// [`QueryCursor`]: row batches are delivered as partitions finish, and
    /// the cursor holds the admission permit *and* memstore pins until it
    /// is exhausted or dropped. Multi-table pipelines keep whole-table
    /// pins; a single-scan stream pins only the partitions it has actually
    /// delivered, so a long-lived cursor leaves the rest of the table
    /// evictable (evicted partitions are rebuilt from lineage when their
    /// morsel runs). A LIMIT stream stops launching partitions early.
    pub fn sql_stream(&self, text: &str) -> Result<QueryCursor<'_>> {
        let shared = &self.shared;
        // Parse through the cache's parse tier; a non-SELECT statement gets
        // the same error `parser::parse_select` would produce.
        let parsed = match self.sql.parse_cached(text) {
            Ok(parsed) => parsed,
            Err(err) => {
                self.record_parse_failure(text);
                return Err(err);
            }
        };
        let statement = match parsed.as_ref() {
            shark_sql::ast::Statement::Select(statement) => statement,
            other => {
                self.record_parse_failure(text);
                return Err(SharkError::Parse(format!(
                    "expected a SELECT statement, found {other:?}"
                )));
            }
        };
        let tables = statement.referenced_tables();

        // Root span of the streamed query's trace. It is *stored in the
        // cursor* and finished by `finalize`, so batch deliveries that
        // happen long after this call still belong to the same trace.
        let mut root = if shark_obs::tracer().is_enabled() {
            let mut span = shark_obs::start_trace("query-stream");
            span.annotate("statement", text);
            span.annotate("session", &self.id.to_string());
            Some(span)
        } else {
            None
        };
        let _trace = root.as_ref().map(|r| r.context().attach());

        let acquired = {
            let _wait = shark_obs::span("admission-wait");
            shared.admission.acquire()
        };
        let (permit, queue_wait) = match acquired {
            Ok(admitted) => admitted,
            Err(err) => {
                if let Some(root) = root.as_mut() {
                    root.annotate("rejected", "true");
                }
                shared.metrics.record_rejection(self.id);
                return Err(SharkError::Execution(err.to_string()));
            }
        };
        // RAII pins: released on any error/panic path below; the success
        // path hands them over to the cursor, which owns them from then on.
        let (pins, recomputed_tables) = PinGuard::pin(&shared.memstore, tables);
        let cache_hit_bytes = cache_hit_bytes(&shared.catalog, &pins.tables);
        let residency_before = table_residency(&shared.catalog, &pins.tables);
        // Clamp this cursor's prefetch under the server-wide budget while
        // the admission permit is already held, so total speculative work
        // stays bounded alongside total in-flight queries.
        let prefetch = shared.acquire_prefetch(self.sql.stream_prefetch());
        let admitted_at = Instant::now();
        match self.sql.sql_to_stream_cached(text, statement) {
            Ok((stream, plan_cache_hit)) => {
                let stream = stream.with_prefetch(prefetch);
                // Single-scan streams swap the whole-table pin for
                // partition-granular pins on delivered partitions: a
                // long-lived cursor no longer holds every partition of the
                // table hostage against eviction — undelivered partitions
                // stay evictable and are rebuilt from lineage if a morsel
                // needs one after pressure took it.
                let mut tables = pins.into_tables();
                let scan_table = stream.single_scan_table().and_then(|scan| {
                    let at = tables.iter().position(|t| t == scan)?;
                    let released = tables.remove(at);
                    shared.memstore.unpin(std::slice::from_ref(&released));
                    Some(released)
                });
                Ok(QueryCursor {
                    session: self,
                    permit: Some(permit),
                    stream,
                    tables,
                    scan_table,
                    pinned_partitions: 0,
                    residency_before,
                    statement: text.to_string(),
                    queue_wait,
                    admitted_at,
                    recomputed_tables,
                    cache_hit_bytes,
                    prefetch,
                    plan_cache_hit,
                    root,
                    failed: false,
                    finalized: false,
                })
            }
            Err(err) => {
                // Planning failed: release everything and record the
                // failure before the permit drops.
                if let Some(root) = root.as_mut() {
                    root.annotate("failed", "true");
                }
                shared.release_prefetch(prefetch);
                drop(pins);
                let evictions = shared.memstore.enforce(&shared.catalog, shared.ctx.cache());
                shared.memstore.reclaim_dropped(&shared.catalog);
                drop(permit);
                shared.metrics.record(QueryMetrics {
                    session_id: self.id,
                    query_id: shared.next_query_id.fetch_add(1, Ordering::Relaxed),
                    statement: text.to_string(),
                    queue_wait,
                    exec_time: admitted_at.elapsed(),
                    sim_seconds: 0.0,
                    time_to_first_row: admitted_at.elapsed(),
                    rows_streamed: 0,
                    partitions_streamed: 0,
                    partitions_total: 0,
                    // No cursor was ever handed out, so this does not
                    // count toward the streamed-query aggregates.
                    streamed: false,
                    prefetch_depth: 0,
                    prefetch_hits: 0,
                    cache_hit_bytes,
                    recomputed_tables,
                    evictions_triggered: evictions.len(),
                    quota_evictions: 0,
                    plan_cache_hit: false,
                    failed: true,
                });
                Err(err)
            }
        }
    }

    /// Parse a statement through the plan cache's parse tier without
    /// executing it — the wire frontend's Prepare path, which wants parse
    /// errors at prepare time and a warmed cache for the Executes after.
    pub(crate) fn parse_statement(&self, text: &str) -> Result<Arc<shark_sql::ast::Statement>> {
        self.sql.parse_cached(text)
    }

    /// Record a query that never got past parsing.
    fn record_parse_failure(&self, text: &str) {
        self.shared.metrics.record(QueryMetrics {
            session_id: self.id,
            query_id: self.shared.next_query_id.fetch_add(1, Ordering::Relaxed),
            statement: text.to_string(),
            queue_wait: Duration::ZERO,
            exec_time: Duration::ZERO,
            sim_seconds: 0.0,
            time_to_first_row: Duration::ZERO,
            rows_streamed: 0,
            partitions_streamed: 0,
            partitions_total: 0,
            streamed: false,
            prefetch_depth: 0,
            prefetch_hits: 0,
            cache_hit_bytes: 0,
            recomputed_tables: 0,
            evictions_triggered: 0,
            quota_evictions: 0,
            plan_cache_hit: false,
            failed: true,
        });
    }

    /// Eagerly load a cached table through this session (admission-gated
    /// like any other statement would be).
    pub fn load_table(&self, name: &str) -> Result<LoadReport> {
        let shared = &self.shared;
        let lowered = name.to_lowercase();
        // Quota-feasibility gate, *before* the admission permit: once a
        // full load has recorded the table's exact footprint, a session
        // whose quota provably cannot hold it is rejected outright instead
        // of being admitted, loading, and thrashing every partition back
        // out through quota evictions. (The discovering first load is
        // always admitted — that is how the footprint becomes known.)
        if let Some((footprint, quota)) = shared.memstore.reject_infeasible_load(&lowered) {
            shared.metrics.record_rejection(self.id);
            return Err(SharkError::Execution(format!(
                "load of table '{lowered}' rejected: its full resident footprint \
                 ({footprint} bytes) provably exceeds the per-session memory quota \
                 ({quota} bytes); the load could only thrash through quota evictions"
            )));
        }
        let (permit, _wait) = shared
            .admission
            .acquire()
            .map_err(|e| SharkError::Execution(e.to_string()))?;
        // Pin before loading so a concurrent enforcement cannot evict the
        // table out from under the load; charge the load to this session.
        let (pins, _) = PinGuard::pin(&shared.memstore, vec![lowered.clone()]);
        let report = self.sql.load_table(name);
        if report.is_ok() {
            shared.memstore.record_owner(&lowered, self.id);
            // Record the exact full-load footprint while every partition is
            // still resident (quota enforcement below may evict some): it
            // becomes the provable bound future feasibility checks use.
            if let Ok(table) = shared.catalog.get(&lowered) {
                shared.memstore.record_footprint_if_full(&table);
            }
        }
        drop(pins);
        shared
            .memstore
            .enforce_session_quota(self.id, &shared.catalog);
        shared.memstore.enforce(&shared.catalog, shared.ctx.cache());
        drop(permit);
        shared.persist_durable();
        report
    }

    /// Resident memstore bytes currently charged to this session (the
    /// tables it loaded or created), out of
    /// [`ServerConfig::session_mem_quota_bytes`].
    pub fn resident_bytes(&self) -> u64 {
        self.shared
            .memstore
            .session_bytes(self.id, &self.shared.catalog)
    }
}

impl Drop for SessionHandle {
    fn drop(&mut self) {
        // A closing session leaves every owner set it was in, re-apportioning
        // co-owned tables' bytes over the surviving owners — otherwise the
        // dead session would keep absorbing its share forever and the
        // remaining owners would be under-charged against their quotas.
        self.shared.memstore.release_session(self.id);
    }
}

/// Attach this query's completion-time enforcement outcome to its trace:
/// an `eviction` event when the global budget evicted victims (with its
/// demoted share broken out), a `quota-eviction` event when the session's
/// own quota did, and a `promotion` event for partitions scans faulted back
/// in from the spill tier. No-op when tracing is off or no trace context is
/// attached.
fn record_enforcement_events(
    evictions: &[EvictionEvent],
    quota_events: &[EvictionEvent],
    promotions: &[EvictionEvent],
) {
    if !shark_obs::active() {
        return;
    }
    if !evictions.is_empty() {
        let partitions: usize = evictions.iter().map(EvictionEvent::partitions).sum();
        let demoted: usize = evictions
            .iter()
            .filter(|e| matches!(e, EvictionEvent::Demoted { .. }))
            .map(EvictionEvent::partitions)
            .sum();
        shark_obs::event(
            "eviction",
            &[
                ("events", &evictions.len().to_string()),
                ("partitions", &partitions.to_string()),
                ("demoted", &demoted.to_string()),
            ],
        );
    }
    if !quota_events.is_empty() {
        let partitions: usize = quota_events.iter().map(EvictionEvent::partitions).sum();
        shark_obs::event("quota-eviction", &[("partitions", &partitions.to_string())]);
    }
    if !promotions.is_empty() {
        let partitions: usize = promotions.iter().map(EvictionEvent::partitions).sum();
        shark_obs::event("promotion", &[("partitions", &partitions.to_string())]);
    }
}

/// Rebuild the catalog and spill tier from the durable state under the
/// spill directory: snapshot + WAL replay for the table map and epoch,
/// manifest + WAL replay for the set of frames worth re-adopting.
///
/// Replay applies WAL records in log order *onto* the snapshot/manifest
/// baseline. No epoch filtering is needed: a checkpoint that crashed
/// before truncating the WAL leaves records that are already folded into
/// the snapshot, and re-applying them is idempotent (same upserts, same
/// removals). Frames only survive into the adoption set if their table
/// still exists at the exact version the frame was written under —
/// anything else is swept and falls back to lineage recompute.
fn restore_catalog(
    catalog: &Catalog,
    spill: &Arc<SpillManager>,
    num_nodes: usize,
    resolver: GeneratorResolver<'_>,
) -> RecoveryStats {
    let started = Instant::now();
    let mut root = if shark_obs::tracer().is_enabled() {
        Some(shark_obs::start_trace("restore"))
    } else {
        None
    };
    let _trace = root.as_ref().map(|r| r.context().attach());
    let dir = spill.dir();
    let replay = replay_wal(&dir.join(WAL_FILE));
    let snapshot = read_snapshot(&dir.join(SNAPSHOT_FILE)).unwrap_or_default();
    let manifest = read_manifest(&dir.join(MANIFEST_FILE)).unwrap_or_default();

    let mut stats = RecoveryStats {
        restored: true,
        wal_records_replayed: replay.records.len() as u64,
        torn_wal_tail: replay.torn,
        ..RecoveryStats::default()
    };
    let mut tables: Vec<TableRecord> = snapshot.tables;
    let mut expected: Vec<ManifestEntry> = manifest.entries;
    let mut max_epoch = snapshot.epoch;
    for record in &replay.records {
        max_epoch = max_epoch.max(record.epoch());
        match record {
            WalRecord::Created { table, .. } => {
                tables.retain(|t| t.name != table.name);
                tables.push(table.clone());
            }
            WalRecord::Dropped { name, .. } => {
                tables.retain(|t| t.name != *name);
            }
            WalRecord::Demoted {
                table,
                table_version,
                partition,
                bytes,
                checksum,
                ..
            } => {
                expected.retain(|e| !(e.table == *table && e.partition == *partition));
                expected.push(ManifestEntry {
                    table: table.clone(),
                    partition: *partition,
                    table_version: *table_version,
                    file: spill.frame_file_name(table, *partition as usize),
                    file_bytes: *bytes,
                    checksum: *checksum,
                });
            }
            WalRecord::Promoted {
                table, partition, ..
            } => {
                expected.retain(|e| !(e.table == *table && e.partition == *partition));
            }
        }
    }
    // A frame is only re-adoptable for the exact table version it was
    // written under; frames of dropped or replaced tables become orphans.
    expected.retain(|e| {
        tables
            .iter()
            .any(|t| t.name == e.table && t.version == e.table_version)
    });

    tables.sort_by(|a, b| a.name.cmp(&b.name));
    for record in &tables {
        let generator = resolver(record);
        let placeholder = generator.is_none();
        let generator = generator.unwrap_or_else(|| placeholder_generator(&record.name));
        let meta = record.into_meta(generator, num_nodes);
        if let Some(mem) = &meta.cached {
            // Wire the tier before the first scan so adopted frames are
            // faulted in instead of recomputed.
            mem.set_spill_source(spill.clone());
        }
        catalog.register(meta);
        stats.tables_restored += 1;
        if placeholder {
            stats.placeholder_tables += 1;
        }
    }
    // Replayed registrations bumped the epoch from zero; land on the exact
    // pre-crash epoch and discard the registrations' DDL journal — replay
    // is history, not new DDL to be re-logged.
    catalog.advance_epoch_to(max_epoch);
    catalog.drain_ddl();

    let (adopted, rejected) = spill.adopt(&expected);
    stats.frames_adopted = adopted;
    stats.frames_rejected = rejected;
    stats.orphans_swept = spill.sweep_orphans();

    let metrics = recovery_metrics();
    metrics.restores.inc();
    metrics.wal_records_replayed.add(stats.wal_records_replayed);
    if stats.torn_wal_tail {
        metrics.torn_wal_tails.inc();
    }
    metrics.tables_restored.add(stats.tables_restored);
    metrics.seconds.observe(started.elapsed().as_secs_f64());
    if let Some(root) = root.as_mut() {
        root.annotate("tables", &stats.tables_restored.to_string());
        root.annotate("frames_adopted", &stats.frames_adopted.to_string());
        root.annotate("epoch", &max_epoch.to_string());
        if stats.torn_wal_tail {
            root.annotate("torn_wal_tail", "true");
        }
    }
    if let Some(root) = root {
        root.finish();
    }
    stats
}

/// The generator a restored table falls back to when the resolver has
/// nothing for it: generators are code, so they cannot be persisted, and
/// silently serving zero rows would corrupt results. Scans served from
/// memory or adopted spill frames never call it; only a lineage recompute
/// does, and then it fails loudly.
fn placeholder_generator(name: &str) -> RowGenerator {
    let name = name.to_string();
    Arc::new(move |_| {
        panic!(
            "table '{name}' was restored without a row generator; \
             re-attach one with SharkServer::restore_with"
        )
    })
}

/// The tables a statement needs pinned while it executes: every table it
/// reads, plus — for CTAS — the table it *creates*, so a concurrent budget
/// enforcement cannot evict the target's freshly loaded memstore partitions
/// mid-load.
fn pinned_tables_for(statement: &shark_sql::ast::Statement) -> Vec<String> {
    let mut tables = statement.referenced_tables();
    if let shark_sql::ast::Statement::CreateTableAs { name, .. } = statement {
        let target = name.to_lowercase();
        if !tables.contains(&target) {
            tables.push(target);
        }
    }
    tables
}

/// Resident columnar bytes of the referenced cached tables (the bytes the
/// scans could serve straight from the memstore).
fn cache_hit_bytes(catalog: &Catalog, tables: &[String]) -> u64 {
    tables
        .iter()
        .filter_map(|name| catalog.get(name).ok())
        .filter_map(|t| t.cached.as_ref().map(|m| m.memory_bytes()))
        .sum()
}

/// Per-table resident bytes of the referenced cached tables, snapshotted
/// before a query runs so [`charge_faulted_tables`] can attribute growth.
fn table_residency(catalog: &Catalog, tables: &[String]) -> Vec<(String, u64)> {
    tables
        .iter()
        .filter_map(|name| catalog.get(name).ok())
        .filter_map(|t| {
            t.cached
                .as_ref()
                .map(|m| (t.name.clone(), m.memory_bytes()))
        })
        .collect()
}

/// Charge every referenced table whose residency this query *grew* (lazy
/// scan loads, lineage rebuilds) to the session, so query-only tenants
/// cannot fault in an unbounded working set outside their quota. First
/// owner wins, so already-charged tables are unaffected.
fn charge_faulted_tables(shared: &ServerShared, session_id: u64, before: &[(String, u64)]) {
    for (name, bytes_before) in before {
        let Ok(table) = shared.catalog.get(name) else {
            continue;
        };
        let grew = table
            .cached
            .as_ref()
            .map(|m| m.memory_bytes() > *bytes_before)
            .unwrap_or(false);
        if grew {
            shared.memstore.record_owner(name, session_id);
        }
        // A scan that faulted the whole table in just revealed its exact
        // footprint — record it for the quota-infeasibility admission gate.
        shared.memstore.record_footprint_if_full(&table);
    }
}

/// A streaming result cursor handed out by [`SessionHandle::sql_stream`].
///
/// The cursor owns the query's admission permit and the memstore pins on
/// every referenced table. Both are released — and the query's
/// [`QueryMetrics`] recorded — when the stream is exhausted, when an
/// execution error surfaces, or when the cursor is dropped mid-stream.
pub struct QueryCursor<'s> {
    session: &'s SessionHandle,
    permit: Option<AdmissionPermit<'s>>,
    stream: QueryStream,
    /// Tables held under whole-table pins for the cursor's lifetime
    /// (everything referenced except a single-scan target).
    tables: Vec<String>,
    /// Single-scan target pinned at partition granularity instead: only
    /// partitions the stream has delivered are pinned, via
    /// [`QueryCursor::sync_partition_pins`].
    scan_table: Option<String>,
    /// How many entries of the stream's delivered-partition list have been
    /// pinned so far (the list is append-only).
    pinned_partitions: usize,
    /// Referenced tables' resident bytes at admission, for fault-in
    /// ownership attribution on finalize.
    residency_before: Vec<(String, u64)>,
    statement: String,
    queue_wait: Duration,
    admitted_at: Instant,
    recomputed_tables: usize,
    cache_hit_bytes: u64,
    /// Prefetch depth granted out of the server's aggregate budget,
    /// returned to the pool on finalize.
    prefetch: usize,
    /// Whether this stream's plan came out of the shared plan cache.
    plan_cache_hit: bool,
    /// Root trace span of the streamed query (when tracing is on),
    /// finished with delivery totals when the cursor finalizes.
    root: Option<shark_obs::DetachedSpan>,
    failed: bool,
    finalized: bool,
}

impl QueryCursor<'_> {
    /// The result schema.
    pub fn schema(&self) -> &Schema {
        self.stream.schema()
    }

    /// Run-time decisions taken while building and running the pipeline.
    pub fn notes(&self) -> &[String] {
        self.stream.notes()
    }

    /// Delivery progress so far.
    pub fn progress(&self) -> &StreamProgress {
        self.stream.progress()
    }

    /// Whether this stream's plan came out of the shared plan cache.
    pub fn plan_cache_hit(&self) -> bool {
        self.plan_cache_hit
    }

    /// Simulated cluster seconds accumulated by the partitions run so far.
    pub fn sim_seconds(&self) -> f64 {
        self.stream.sim_seconds()
    }

    /// Fetch the next batch of rows. Returns `Ok(None)` when the stream is
    /// exhausted, at which point the admission permit and table pins have
    /// been released and the query's metrics recorded.
    pub fn next_batch(&mut self) -> Result<Option<Vec<Row>>> {
        if self.finalized {
            return Ok(None);
        }
        match self.stream.next_batch() {
            Ok(Some(batch)) => {
                self.sync_partition_pins();
                Ok(Some(batch))
            }
            Ok(None) => {
                self.finalize();
                Ok(None)
            }
            Err(err) => {
                self.failed = true;
                self.finalize();
                Err(err)
            }
        }
    }

    /// Pin every newly delivered partition of the single-scan table.
    fn sync_partition_pins(&mut self) {
        let Some(table) = &self.scan_table else {
            return;
        };
        let delivered = self.stream.delivered_scan_partitions();
        for &partition in &delivered[self.pinned_partitions..] {
            self.session.shared.memstore.pin_partition(table, partition);
        }
        self.pinned_partitions = delivered.len();
    }

    /// Drain the rest of the stream into one vector (closing the cursor).
    pub fn fetch_all(&mut self) -> Result<Vec<Row>> {
        let mut rows = Vec::new();
        while let Some(batch) = self.next_batch()? {
            rows.extend(batch);
        }
        Ok(rows)
    }

    /// Release pins + permit and record this query's metrics. Idempotent.
    fn finalize(&mut self) {
        if self.finalized {
            return;
        }
        self.finalized = true;
        let shared = &self.session.shared;
        let exec_time = self.admitted_at.elapsed();
        // Re-attach the query's trace context (finalize may run on a
        // different thread than sql_stream) so enforcement events below
        // land inside this query's trace.
        let _attach = if shark_obs::active() {
            self.root.as_ref().map(|r| r.context().attach())
        } else {
            None
        };
        // Stop the stream first (cancelling + joining any prefetch workers)
        // so no task can touch a table after its pin is released.
        self.stream.cancel();
        let progress = self.stream.progress().clone();
        let sim_seconds = self.stream.sim_seconds();
        shared.release_prefetch(self.prefetch);
        shared.memstore.unpin(&self.tables);
        if let Some(table) = &self.scan_table {
            let delivered = self.stream.delivered_scan_partitions();
            for &partition in &delivered[..self.pinned_partitions] {
                shared.memstore.unpin_partition(table, partition);
            }
        }
        // Charge faulted-in tables, then re-enforce quota + budget while
        // still holding the permit, exactly as the batch path does on
        // completion.
        charge_faulted_tables(shared, self.session.id, &self.residency_before);
        let quota_events = shared
            .memstore
            .enforce_session_quota(self.session.id, &shared.catalog);
        let evictions = shared.memstore.enforce(&shared.catalog, shared.ctx.cache());
        // Cancelling the stream released its catalog-snapshot pin: if this
        // cursor was the last reference to a dropped table version, its
        // memstore is reclaimed now.
        shared.memstore.reclaim_dropped(&shared.catalog);
        self.permit.take();
        let promotions = shared.memstore.drain_promotions();
        record_enforcement_events(&evictions, &quota_events, &promotions);
        shared.persist_durable();
        if let Some(mut root) = self.root.take() {
            root.add_rows(progress.rows_streamed);
            root.annotate(
                "partitions",
                &format!(
                    "{}/{}",
                    progress.partitions_streamed, progress.partitions_total
                ),
            );
            if self.failed {
                root.annotate("failed", "true");
            }
            root.finish();
        }
        shared.metrics.record(QueryMetrics {
            session_id: self.session.id,
            query_id: shared.next_query_id.fetch_add(1, Ordering::Relaxed),
            statement: self.statement.clone(),
            queue_wait: self.queue_wait,
            exec_time,
            sim_seconds,
            time_to_first_row: progress.time_to_first_row.unwrap_or(exec_time),
            rows_streamed: progress.rows_streamed,
            partitions_streamed: progress.partitions_streamed,
            partitions_total: progress.partitions_total,
            streamed: true,
            prefetch_depth: self.prefetch,
            prefetch_hits: progress.prefetch_hits,
            cache_hit_bytes: self.cache_hit_bytes,
            recomputed_tables: self.recomputed_tables,
            evictions_triggered: evictions.len(),
            quota_evictions: quota_events.iter().map(EvictionEvent::partitions).sum(),
            plan_cache_hit: self.plan_cache_hit,
            failed: self.failed,
        });
    }
}

impl Drop for QueryCursor<'_> {
    fn drop(&mut self) {
        // A cursor abandoned mid-stream still releases its pins and permit
        // and records what it streamed.
        self.finalize();
    }
}
