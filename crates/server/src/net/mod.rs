//! TCP serving frontend: framed wire protocol, connection lifecycle,
//! per-tenant rate classes, and idle reaping.
//!
//! [`NetServer`] multiplexes many client connections onto one
//! [`SharkServer`]: each accepted socket gets a dedicated handler thread
//! and its own [`SessionHandle`], so the *existing* serving-layer
//! controls — admission queueing, per-session memory quotas, the shared
//! prefetch budget and the plan cache — govern wire traffic with no new
//! policy code. Three properties the frontend adds:
//!
//! * **Client-paced backpressure.** Result partitions stream as
//!   [`frame::Frame::ResultBatch`] frames over blocking writes; a slow
//!   client stalls the write, which stalls the cursor's `next_batch` loop,
//!   and the query's run-ahead stays bounded by the prefetch grant the
//!   cursor took from [`crate::ServerConfig::max_total_prefetch`]. No
//!   unbounded result buffering anywhere in the server.
//! * **Idle reaping on a deadline wheel.** Connections are filed on a
//!   coarse-tick deadline wheel keyed by their idle deadline; the
//!   reaper thread lazily re-checks `last_active` on expiry (activity
//!   just re-files the entry, it never touches the wheel on the hot
//!   path) and force-closes true idlers with `TcpStream::shutdown`, which
//!   errors the handler out of its blocking read.
//! * **Per-tenant rate classes.** The Hello handshake names a tenant;
//!   its [`RateClass`] sets the session's streaming prefetch depth, the
//!   result-batch row cap and the idle timeout — layered on top of the
//!   per-session memory quota, which is enforced by session id exactly as
//!   for embedded sessions.
//!
//! Cancellation is polled between batches: the handler peeks the socket
//! for a buffered [`frame::Frame::Cancel`] before each write, so a client
//! can abandon an expensive query without tearing down its connection.
//! A client that *does* disconnect mid-stream surfaces as a write error;
//! dropping the cursor releases its permit, pins and prefetch grant
//! ([`crate::QueryCursor`]'s idempotent finalize), so an abandoned query
//! leaks nothing — `examples/server_tcp.rs` and the CI `net-smoke` job
//! assert exactly that from the [`crate::ServerReport`] gauges.

pub mod frame;

use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use shark_common::{Result, Row, SharkError};

use crate::server::{SessionHandle, SharkServer};
use frame::{Frame, FrameError};

/// Cached unified-registry handles for the `shark_net_*` metric family.
struct NetObs {
    opened: Arc<shark_obs::Counter>,
    closed: Arc<shark_obs::Counter>,
    reaped: Arc<shark_obs::Counter>,
    active: Arc<shark_obs::Gauge>,
    bytes_sent: Arc<shark_obs::Counter>,
    bytes_received: Arc<shark_obs::Counter>,
    frames_sent: Arc<shark_obs::Counter>,
    frames_received: Arc<shark_obs::Counter>,
    protocol_errors: Arc<shark_obs::Counter>,
    auth_failures: Arc<shark_obs::Counter>,
    queries: Arc<shark_obs::Counter>,
    prepared: Arc<shark_obs::Counter>,
    cancels: Arc<shark_obs::Counter>,
    frame_bytes: Arc<shark_obs::Histogram>,
}

fn net_obs() -> &'static NetObs {
    static OBS: std::sync::OnceLock<NetObs> = std::sync::OnceLock::new();
    OBS.get_or_init(|| {
        let reg = shark_obs::metrics();
        NetObs {
            opened: reg.counter(
                "shark_net_connections_opened_total",
                "TCP connections accepted by the serving frontend",
            ),
            closed: reg.counter(
                "shark_net_connections_closed_total",
                "TCP connections fully torn down (client close, error, or reap)",
            ),
            reaped: reg.counter(
                "shark_net_connections_reaped_total",
                "Connections force-closed by the idle-deadline reaper",
            ),
            active: reg.gauge(
                "shark_net_connections_active",
                "TCP connections currently open",
            ),
            bytes_sent: reg.counter(
                "shark_net_bytes_sent_total",
                "Frame bytes (header + payload) written to client sockets",
            ),
            bytes_received: reg.counter(
                "shark_net_bytes_received_total",
                "Frame bytes (header + payload) read from client sockets",
            ),
            frames_sent: reg.counter(
                "shark_net_frames_sent_total",
                "Protocol frames written to client sockets",
            ),
            frames_received: reg.counter(
                "shark_net_frames_received_total",
                "Protocol frames read from client sockets",
            ),
            protocol_errors: reg.counter(
                "shark_net_protocol_errors_total",
                "Malformed frames that closed their connection",
            ),
            auth_failures: reg.counter(
                "shark_net_auth_failures_total",
                "Hello handshakes rejected (magic, version, or token)",
            ),
            queries: reg.counter(
                "shark_net_queries_total",
                "Query and Execute frames processed",
            ),
            prepared: reg.counter(
                "shark_net_prepared_statements_total",
                "Prepare frames that registered a statement",
            ),
            cancels: reg.counter("shark_net_cancels_total", "Cancel frames honored mid-query"),
            frame_bytes: reg.histogram(
                "shark_net_frame_bytes",
                "Size distribution of frames written to clients",
                shark_obs::WIRE_BUCKETS,
            ),
        }
    })
}

/// Wire-frontend counters, owned by [`crate::SharkServer`] so the
/// [`crate::ServerReport`] always carries the `connections_*` /
/// `wire_bytes_*` / `net_*` gauges (all zero until `serve` is called).
/// Every mutation also feeds the `shark_net_*` unified-registry metrics.
#[derive(Default)]
pub struct NetCounters {
    opened: AtomicU64,
    closed: AtomicU64,
    reaped: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    frames_sent: AtomicU64,
    frames_received: AtomicU64,
    protocol_errors: AtomicU64,
    auth_failures: AtomicU64,
    queries: AtomicU64,
    prepared_statements: AtomicU64,
    cancels: AtomicU64,
}

impl NetCounters {
    fn connection_opened(&self) {
        self.opened.fetch_add(1, Ordering::Relaxed);
        let obs = net_obs();
        obs.opened.inc();
        obs.active.add(1);
    }

    fn connection_closed(&self) {
        self.closed.fetch_add(1, Ordering::Relaxed);
        let obs = net_obs();
        obs.closed.inc();
        obs.active.add(-1);
    }

    fn connection_reaped(&self) {
        self.reaped.fetch_add(1, Ordering::Relaxed);
        net_obs().reaped.inc();
    }

    fn frame_sent(&self, bytes: u64) {
        self.frames_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
        let obs = net_obs();
        obs.frames_sent.inc();
        obs.bytes_sent.add(bytes);
        obs.frame_bytes.observe(bytes as f64);
    }

    fn frame_received(&self, bytes: u64) {
        self.frames_received.fetch_add(1, Ordering::Relaxed);
        self.bytes_received.fetch_add(bytes, Ordering::Relaxed);
        let obs = net_obs();
        obs.frames_received.inc();
        obs.bytes_received.add(bytes);
    }

    fn protocol_error(&self) {
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
        net_obs().protocol_errors.inc();
    }

    fn auth_failure(&self) {
        self.auth_failures.fetch_add(1, Ordering::Relaxed);
        net_obs().auth_failures.inc();
    }

    fn query(&self) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        net_obs().queries.inc();
    }

    fn prepared(&self) {
        self.prepared_statements.fetch_add(1, Ordering::Relaxed);
        net_obs().prepared.inc();
    }

    fn cancel(&self) {
        self.cancels.fetch_add(1, Ordering::Relaxed);
        net_obs().cancels.inc();
    }

    /// Connections ever accepted.
    pub fn opened(&self) -> u64 {
        self.opened.load(Ordering::Relaxed)
    }

    /// Connections fully torn down.
    pub fn closed(&self) -> u64 {
        self.closed.load(Ordering::Relaxed)
    }

    /// Connections currently open (`opened - closed`).
    pub fn active(&self) -> u64 {
        self.opened().saturating_sub(self.closed())
    }

    /// Connections force-closed by the idle reaper (also counted closed).
    pub fn reaped(&self) -> u64 {
        self.reaped.load(Ordering::Relaxed)
    }

    /// Frame bytes written to clients.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Frame bytes read from clients.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received.load(Ordering::Relaxed)
    }

    /// Frames written to clients.
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent.load(Ordering::Relaxed)
    }

    /// Frames read from clients.
    pub fn frames_received(&self) -> u64 {
        self.frames_received.load(Ordering::Relaxed)
    }

    /// Malformed frames observed (each closed its connection).
    pub fn protocol_errors(&self) -> u64 {
        self.protocol_errors.load(Ordering::Relaxed)
    }

    /// Handshakes rejected.
    pub fn auth_failures(&self) -> u64 {
        self.auth_failures.load(Ordering::Relaxed)
    }

    /// Query + Execute frames processed.
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Statements registered by Prepare frames.
    pub fn prepared_statements(&self) -> u64 {
        self.prepared_statements.load(Ordering::Relaxed)
    }

    /// Cancel frames honored.
    pub fn cancels(&self) -> u64 {
        self.cancels.load(Ordering::Relaxed)
    }
}

/// A tenant's serving parameters, selected by the Hello handshake's tenant
/// name and layered on top of the per-session memory quota.
#[derive(Debug, Clone)]
pub struct RateClass {
    /// Tenant name clients put in their Hello frame.
    pub name: String,
    /// Streaming prefetch depth requested for the tenant's sessions
    /// (still clamped under the server-wide prefetch budget).
    pub stream_prefetch: usize,
    /// Max rows per [`Frame::ResultBatch`]; smaller classes pace slow
    /// consumers harder.
    pub max_batch_rows: usize,
    /// Idle deadline for the tenant's connections.
    pub idle_timeout: Duration,
}

impl Default for RateClass {
    fn default() -> RateClass {
        RateClass {
            name: "default".to_string(),
            stream_prefetch: 2,
            max_batch_rows: 1024,
            idle_timeout: Duration::from_secs(60),
        }
    }
}

/// Configuration for [`SharkServer::serve`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Bind address; port 0 picks a free port (read it back from
    /// [`NetServer::local_addr`]).
    pub addr: String,
    /// Hard cap on concurrently open connections; excess accepts are
    /// answered with an Error frame and closed immediately.
    pub max_connections: usize,
    /// Shared-secret token Hello must present; `None` disables auth.
    pub auth_token: Option<String>,
    /// Granularity of the idle-reaper's deadline wheel.
    pub reap_tick: Duration,
    /// Serving parameters for tenants not naming a configured rate class.
    pub default_class: RateClass,
    /// Named per-tenant rate classes.
    pub rate_classes: Vec<RateClass>,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 1024,
            auth_token: None,
            reap_tick: Duration::from_millis(100),
            default_class: RateClass::default(),
            rate_classes: Vec::new(),
        }
    }
}

impl NetConfig {
    /// Bind address (e.g. `"127.0.0.1:4848"`).
    pub fn with_addr(mut self, addr: impl Into<String>) -> NetConfig {
        self.addr = addr.into();
        self
    }

    /// Cap concurrently open connections.
    pub fn with_max_connections(mut self, max: usize) -> NetConfig {
        self.max_connections = max;
        self
    }

    /// Require this shared-secret token in every Hello.
    pub fn with_auth_token(mut self, token: impl Into<String>) -> NetConfig {
        self.auth_token = Some(token.into());
        self
    }

    /// Idle timeout for the default rate class.
    pub fn with_idle_timeout(mut self, timeout: Duration) -> NetConfig {
        self.default_class.idle_timeout = timeout;
        self
    }

    /// Deadline-wheel tick (reaper wake-up granularity).
    pub fn with_reap_tick(mut self, tick: Duration) -> NetConfig {
        self.reap_tick = tick;
        self
    }

    /// Max rows per result batch for the default rate class.
    pub fn with_max_batch_rows(mut self, rows: usize) -> NetConfig {
        self.default_class.max_batch_rows = rows;
        self
    }

    /// Register a named per-tenant rate class.
    pub fn with_rate_class(mut self, class: RateClass) -> NetConfig {
        self.rate_classes.push(class);
        self
    }

    fn class_for(&self, tenant: &str) -> RateClass {
        self.rate_classes
            .iter()
            .find(|c| c.name == tenant)
            .cloned()
            .unwrap_or_else(|| self.default_class.clone())
    }
}

/// One live connection's shared state: what the reaper and the handler
/// both need to see.
struct ConnState {
    /// Clone of the handler's socket, used by the reaper/shutdown to
    /// `shutdown()` it (erroring the handler out of a blocking read).
    stream: TcpStream,
    /// Milliseconds since server start of the last frame received.
    last_active_ms: AtomicU64,
    /// This connection's idle deadline distance — the default class's
    /// until the handshake names a tenant, that tenant's after.
    idle_timeout_ms: AtomicU64,
}

/// Coarse-tick timer wheel of connection idle deadlines. Insertions hash
/// the deadline onto a slot; expiry lazily re-checks the connection's
/// `last_active` and re-files entries that saw traffic since — so the
/// receive hot path never touches the wheel, it only stores a timestamp.
struct DeadlineWheel {
    slots: Vec<Mutex<Vec<u64>>>,
    tick_ms: u64,
}

impl DeadlineWheel {
    fn new(tick: Duration, slots: usize) -> DeadlineWheel {
        DeadlineWheel {
            slots: (0..slots.max(1)).map(|_| Mutex::new(Vec::new())).collect(),
            tick_ms: tick.as_millis().max(1) as u64,
        }
    }

    fn tick_of(&self, at_ms: u64) -> u64 {
        at_ms / self.tick_ms
    }

    fn insert(&self, conn_id: u64, deadline_ms: u64) {
        let slot = (self.tick_of(deadline_ms) as usize) % self.slots.len();
        self.slots[slot].lock().push(conn_id);
    }

    fn drain_tick(&self, tick: u64) -> Vec<u64> {
        let slot = (tick as usize) % self.slots.len();
        std::mem::take(&mut *self.slots[slot].lock())
    }
}

/// The running TCP frontend: accept loop, per-connection handler threads
/// and the idle reaper. Dropping it (or calling [`NetServer::shutdown`])
/// stops accepting, force-closes every connection and joins all threads —
/// after which [`NetCounters::active`] is zero or the teardown failed.
pub struct NetServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    reaper_thread: Option<JoinHandle<()>>,
    shared: Arc<NetShared>,
}

struct NetShared {
    server: SharkServer,
    config: NetConfig,
    epoch: Instant,
    shutdown: Arc<AtomicBool>,
    connections: Mutex<HashMap<u64, Arc<ConnState>>>,
    handlers: Mutex<Vec<JoinHandle<()>>>,
    next_conn_id: AtomicU64,
    wheel: DeadlineWheel,
}

impl NetShared {
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn counters(&self) -> &NetCounters {
        self.server.net_counters()
    }
}

impl NetServer {
    /// Bind `config.addr` and start serving `server` over TCP.
    pub fn start(server: SharkServer, config: NetConfig) -> Result<NetServer> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| SharkError::Config(format!("bind {}: {e}", config.addr)))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| SharkError::Config(format!("local_addr: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| SharkError::Config(format!("set_nonblocking: {e}")))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let wheel = DeadlineWheel::new(config.reap_tick, 64);
        let shared = Arc::new(NetShared {
            server,
            config,
            epoch: Instant::now(),
            shutdown: shutdown.clone(),
            connections: Mutex::new(HashMap::new()),
            handlers: Mutex::new(Vec::new()),
            next_conn_id: AtomicU64::new(1),
            wheel,
        });
        let accept_shared = shared.clone();
        let accept_thread = std::thread::Builder::new()
            .name("shark-net-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared))
            .map_err(|e| SharkError::Config(format!("spawn accept thread: {e}")))?;
        let reaper_shared = shared.clone();
        let reaper_thread = std::thread::Builder::new()
            .name("shark-net-reaper".to_string())
            .spawn(move || reaper_loop(reaper_shared))
            .map_err(|e| SharkError::Config(format!("spawn reaper thread: {e}")))?;
        Ok(NetServer {
            local_addr,
            shutdown,
            accept_thread: Some(accept_thread),
            reaper_thread: Some(reaper_thread),
            shared,
        })
    }

    /// The bound address (read the OS-assigned port back when binding
    /// port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections currently open.
    pub fn active_connections(&self) -> u64 {
        self.shared.counters().active()
    }

    /// Stop accepting, force-close every open connection, and join the
    /// accept, reaper, and handler threads. Idempotent.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for conn in self.shared.connections.lock().values() {
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.reaper_thread.take() {
            let _ = t.join();
        }
        let handlers: Vec<JoinHandle<()>> = std::mem::take(&mut *self.shared.handlers.lock());
        for t in handlers {
            let _ = t.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<NetShared>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let counters = shared.counters();
                counters.connection_opened();
                if shared.counters().active() > shared.config.max_connections as u64 {
                    // Over capacity: answer with an Error frame and close.
                    let _ = send_frame(
                        &stream,
                        counters,
                        &Frame::Error {
                            kind: "capacity".to_string(),
                            message: "server at connection capacity".to_string(),
                        },
                    );
                    let _ = stream.shutdown(Shutdown::Both);
                    counters.connection_closed();
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
                let registry_stream = match stream.try_clone() {
                    Ok(clone) => clone,
                    Err(_) => {
                        counters.connection_closed();
                        continue;
                    }
                };
                let conn = Arc::new(ConnState {
                    stream: registry_stream,
                    last_active_ms: AtomicU64::new(shared.now_ms()),
                    idle_timeout_ms: AtomicU64::new(
                        shared.config.default_class.idle_timeout.as_millis() as u64,
                    ),
                });
                shared.connections.lock().insert(id, conn.clone());
                shared.wheel.insert(
                    id,
                    shared.now_ms() + conn.idle_timeout_ms.load(Ordering::Relaxed),
                );
                let handler_shared = shared.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("shark-net-conn-{id}"))
                    .spawn(move || {
                        handle_connection(stream, conn, handler_shared.clone());
                        handler_shared.connections.lock().remove(&id);
                        handler_shared.counters().connection_closed();
                    });
                match handle {
                    Ok(handle) => shared.handlers.lock().push(handle),
                    Err(_) => {
                        shared.connections.lock().remove(&id);
                        counters.connection_closed();
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                reap_finished_handlers(&shared);
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

/// Join handler threads that already exited, so a long-lived server's
/// handle list tracks open connections instead of growing forever.
fn reap_finished_handlers(shared: &NetShared) {
    let mut finished = Vec::new();
    {
        let mut handlers = shared.handlers.lock();
        let mut i = 0;
        while i < handlers.len() {
            if handlers[i].is_finished() {
                finished.push(handlers.swap_remove(i));
            } else {
                i += 1;
            }
        }
    }
    for handle in finished {
        let _ = handle.join();
    }
}

fn reaper_loop(shared: Arc<NetShared>) {
    let tick_ms = shared.config.reap_tick.as_millis().max(1) as u64;
    let mut next_tick = shared.now_ms() / tick_ms;
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(shared.config.reap_tick);
        let now_ms = shared.now_ms();
        let now_tick = now_ms / tick_ms;
        // Process every tick that elapsed, but at most one full lap —
        // beyond that the slots repeat and a second pass is a no-op.
        let laps = (now_tick.saturating_sub(next_tick) + 1).min(shared.wheel.slots.len() as u64);
        for t in 0..laps {
            for conn_id in shared.wheel.drain_tick(next_tick + t) {
                let Some(conn) = shared.connections.lock().get(&conn_id).cloned() else {
                    continue; // already closed; entry lapses
                };
                let last = conn.last_active_ms.load(Ordering::Relaxed);
                let deadline = last + conn.idle_timeout_ms.load(Ordering::Relaxed);
                if now_ms >= deadline {
                    // Truly idle past its deadline: force-close. The
                    // handler's blocking read errors out and tears the
                    // connection down (counting `closed` itself).
                    let _ = conn.stream.shutdown(Shutdown::Both);
                    shared.counters().connection_reaped();
                } else {
                    // Saw traffic since it was filed: re-file at the
                    // deadline its current activity implies.
                    shared.wheel.insert(conn_id, deadline);
                }
            }
        }
        next_tick = now_tick + 1;
    }
}

/// Write one frame to the socket, feeding the counters.
fn send_frame(mut stream: &TcpStream, counters: &NetCounters, frame: &Frame) -> io::Result<()> {
    let bytes = frame::write_frame(&mut stream, frame)?;
    counters.frame_sent(bytes);
    Ok(())
}

/// What the between-batches poll of the client socket found.
enum ClientSignal {
    /// Nothing buffered; keep streaming.
    Idle,
    /// A buffered Cancel frame.
    Cancel,
    /// A buffered Close frame (cancel, then hang up).
    Close,
    /// Disconnected or sent garbage mid-query.
    Abort,
}

/// Peek the socket for a buffered client frame without blocking the
/// stream. A complete or in-flight frame is consumed (the tail read
/// blocks only for bytes the client has already committed to sending).
fn poll_client(stream: &TcpStream, counters: &NetCounters) -> ClientSignal {
    if stream.set_nonblocking(true).is_err() {
        return ClientSignal::Abort;
    }
    let mut probe = [0u8; 1];
    let peeked = stream.peek(&mut probe);
    if stream.set_nonblocking(false).is_err() {
        return ClientSignal::Abort;
    }
    match peeked {
        Ok(0) => ClientSignal::Abort, // orderly disconnect mid-query
        Ok(_) => match frame::read_frame(&mut &*stream) {
            Ok((frame, bytes)) => {
                counters.frame_received(bytes);
                match frame {
                    Frame::Cancel => ClientSignal::Cancel,
                    Frame::Close => ClientSignal::Close,
                    _ => {
                        counters.protocol_error();
                        ClientSignal::Abort
                    }
                }
            }
            Err(FrameError::Io(_)) => ClientSignal::Abort,
            Err(FrameError::Protocol(_)) => {
                counters.protocol_error();
                ClientSignal::Abort
            }
        },
        Err(e) if e.kind() == io::ErrorKind::WouldBlock => ClientSignal::Idle,
        Err(_) => ClientSignal::Abort,
    }
}

/// What a request handler decided about the connection's future.
enum After {
    /// Keep serving requests.
    Continue,
    /// Tear the connection down (client close, disconnect, or protocol
    /// violation — already counted).
    Hangup,
}

fn handle_connection(stream: TcpStream, conn: Arc<ConnState>, shared: Arc<NetShared>) {
    let counters = shared.counters();

    // --- Handshake -------------------------------------------------------
    let hello = match frame::read_frame(&mut &stream) {
        Ok((frame, bytes)) => {
            counters.frame_received(bytes);
            frame
        }
        Err(FrameError::Io(_)) => return,
        Err(FrameError::Protocol(_)) => {
            counters.protocol_error();
            let _ = send_frame(
                &stream,
                counters,
                &Frame::Error {
                    kind: "protocol".to_string(),
                    message: "malformed handshake frame".to_string(),
                },
            );
            return;
        }
    };
    let (token, tenant) = match hello {
        Frame::Hello { token, tenant } => (token, tenant),
        _ => {
            counters.protocol_error();
            let _ = send_frame(
                &stream,
                counters,
                &Frame::Error {
                    kind: "protocol".to_string(),
                    message: "expected Hello as the first frame".to_string(),
                },
            );
            return;
        }
    };
    if let Some(expected) = &shared.config.auth_token {
        if &token != expected {
            counters.auth_failure();
            let _ = send_frame(
                &stream,
                counters,
                &Frame::Error {
                    kind: "auth".to_string(),
                    message: "invalid auth token".to_string(),
                },
            );
            return;
        }
    }
    let class = shared.config.class_for(&tenant);
    let mut session = shared.server.session();
    session.set_stream_prefetch(class.stream_prefetch);
    conn.idle_timeout_ms.store(
        class.idle_timeout.as_millis().max(1) as u64,
        Ordering::Relaxed,
    );
    conn.last_active_ms
        .store(shared.now_ms(), Ordering::Relaxed);
    if send_frame(
        &stream,
        counters,
        &Frame::HelloOk {
            session_id: session.id(),
            version: frame::PROTOCOL_VERSION,
        },
    )
    .is_err()
    {
        return;
    }

    // --- Request loop ----------------------------------------------------
    let mut prepared: HashMap<u64, String> = HashMap::new();
    let mut next_statement_id: u64 = 1;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let request = match frame::read_frame(&mut &stream) {
            Ok((frame, bytes)) => {
                counters.frame_received(bytes);
                conn.last_active_ms
                    .store(shared.now_ms(), Ordering::Relaxed);
                frame
            }
            // Disconnect, reap, or torn frame: the reaper already counted
            // itself; either way the connection is done.
            Err(FrameError::Io(_)) => return,
            Err(FrameError::Protocol(msg)) => {
                counters.protocol_error();
                let _ = send_frame(
                    &stream,
                    counters,
                    &Frame::Error {
                        kind: "protocol".to_string(),
                        message: msg,
                    },
                );
                return;
            }
        };
        let after = match request {
            Frame::Query { sql } => {
                counters.query();
                run_statement(&stream, counters, &session, &class, &sql)
            }
            Frame::Prepare { sql } => match session.parse_statement(&sql) {
                Ok(_) => {
                    counters.prepared();
                    let statement_id = next_statement_id;
                    next_statement_id += 1;
                    let fingerprint = shark_sql::statement_fingerprint(&sql);
                    prepared.insert(statement_id, sql);
                    match send_frame(
                        &stream,
                        counters,
                        &Frame::Prepared {
                            statement_id,
                            fingerprint,
                        },
                    ) {
                        Ok(()) => After::Continue,
                        Err(_) => After::Hangup,
                    }
                }
                Err(err) => send_error(&stream, counters, &err),
            },
            Frame::Execute { statement_id } => match prepared.get(&statement_id).cloned() {
                Some(sql) => {
                    counters.query();
                    run_statement(&stream, counters, &session, &class, &sql)
                }
                None => {
                    let err = SharkError::Execution(format!(
                        "unknown prepared statement id {statement_id}"
                    ));
                    send_error(&stream, counters, &err)
                }
            },
            // A Cancel with nothing in flight is a no-op, not an error:
            // the query it raced may have finished a moment ago.
            Frame::Cancel => After::Continue,
            Frame::Close => After::Hangup,
            _ => {
                counters.protocol_error();
                let _ = send_frame(
                    &stream,
                    counters,
                    &Frame::Error {
                        kind: "protocol".to_string(),
                        message: "unexpected server-to-client frame type".to_string(),
                    },
                );
                After::Hangup
            }
        };
        if matches!(after, After::Hangup) {
            return;
        }
    }
}

/// Send an Error frame for a failed statement; the connection survives.
fn send_error(stream: &TcpStream, counters: &NetCounters, err: &SharkError) -> After {
    match send_frame(
        stream,
        counters,
        &Frame::Error {
            kind: err.kind().to_string(),
            message: err.to_string(),
        },
    ) {
        Ok(()) => After::Continue,
        Err(_) => After::Hangup,
    }
}

/// Run one statement and stream its results back. SELECTs go through the
/// streaming cursor (client-paced, cancellable between batches); other
/// statements run to completion and return their rows in one pass.
fn run_statement(
    stream: &TcpStream,
    counters: &NetCounters,
    session: &SessionHandle,
    class: &RateClass,
    sql: &str,
) -> After {
    if is_select(sql) {
        run_streamed(stream, counters, session, class, sql)
    } else {
        run_batch(stream, counters, session, class, sql)
    }
}

fn is_select(sql: &str) -> bool {
    sql.trim_start()
        .get(..6)
        .is_some_and(|head| head.eq_ignore_ascii_case("select"))
}

fn run_batch(
    stream: &TcpStream,
    counters: &NetCounters,
    session: &SessionHandle,
    class: &RateClass,
    sql: &str,
) -> After {
    let outcome = match session.sql(sql) {
        Ok(outcome) => outcome,
        Err(err) => return send_error(stream, counters, &err),
    };
    if send_frame(
        stream,
        counters,
        &Frame::ResultSchema {
            schema: outcome.result.schema.clone(),
        },
    )
    .is_err()
    {
        return After::Hangup;
    }
    let rows = outcome.result.rows.len() as u64;
    for chunk in outcome.result.rows.chunks(class.max_batch_rows.max(1)) {
        if send_frame(
            stream,
            counters,
            &Frame::ResultBatch {
                rows: chunk.to_vec(),
            },
        )
        .is_err()
        {
            return After::Hangup;
        }
    }
    match send_frame(
        stream,
        counters,
        &Frame::QueryDone {
            rows,
            partitions: 0,
            plan_cache_hit: outcome.metrics.plan_cache_hit,
            sim_seconds: outcome.result.sim_seconds,
            cancelled: false,
        },
    ) {
        Ok(()) => After::Continue,
        Err(_) => After::Hangup,
    }
}

fn run_streamed(
    stream: &TcpStream,
    counters: &NetCounters,
    session: &SessionHandle,
    class: &RateClass,
    sql: &str,
) -> After {
    let mut cursor = match session.sql_stream(sql) {
        Ok(cursor) => cursor,
        Err(err) => return send_error(stream, counters, &err),
    };
    if send_frame(
        stream,
        counters,
        &Frame::ResultSchema {
            schema: cursor.schema().clone(),
        },
    )
    .is_err()
    {
        return After::Hangup;
    }
    let mut cancelled = false;
    let mut close_after = false;
    let max_rows = class.max_batch_rows.max(1);
    loop {
        // Between batches is the cancellation point: a buffered Cancel or
        // Close stops the stream; dropping the cursor below releases its
        // permit, pins and prefetch grant.
        match poll_client(stream, counters) {
            ClientSignal::Idle => {}
            ClientSignal::Cancel => {
                counters.cancel();
                cancelled = true;
                break;
            }
            ClientSignal::Close => {
                cancelled = true;
                close_after = true;
                break;
            }
            ClientSignal::Abort => return After::Hangup,
        }
        let batch = match cursor.next_batch() {
            Ok(Some(batch)) => batch,
            Ok(None) => break,
            Err(err) => {
                // The cursor finalized itself on the error path.
                return send_error(stream, counters, &err);
            }
        };
        let mut rows: Vec<Row> = batch;
        while !rows.is_empty() {
            let rest = rows.split_off(rows.len().min(max_rows));
            if send_frame(stream, counters, &Frame::ResultBatch { rows }).is_err() {
                // Client went away mid-stream; the cursor drop releases
                // everything it holds.
                return After::Hangup;
            }
            rows = rest;
        }
    }
    let progress = cursor.progress().clone();
    let plan_cache_hit = cursor.plan_cache_hit();
    let sim_seconds = cursor.sim_seconds();
    // Explicit close: releases the admission permit, pins and prefetch
    // grant (and records the query's metrics) before QueryDone is sent,
    // so a client observing QueryDone observes a quiescent server.
    drop(cursor);
    let done = send_frame(
        stream,
        counters,
        &Frame::QueryDone {
            rows: progress.rows_streamed,
            partitions: progress.partitions_streamed as u64,
            plan_cache_hit,
            sim_seconds,
            cancelled,
        },
    );
    match (done, close_after) {
        (Ok(()), false) => After::Continue,
        _ => After::Hangup,
    }
}
