//! The SHRKNET wire codec: length-prefixed, checksummed frames.
//!
//! Every message on a client connection is one **frame**:
//!
//! ```text
//! [len: u32 LE] [type: u8] [checksum: u64 LE] [payload: len bytes]
//! ```
//!
//! `len` counts payload bytes only (13-byte header excluded) and is capped
//! at [`MAX_FRAME_BYTES`]; `checksum` is FNV-1a 64 over the payload, so a
//! torn or bit-flipped frame is detected before its payload is
//! interpreted. Payload scalars are little-endian; strings are
//! `u32 length + UTF-8 bytes`. The normative spec lives in
//! `docs/wire-protocol.md` — keep the two in sync.
//!
//! The codec is deliberately symmetric (the `shark-client` crate and the
//! server's connection handlers call the same [`write_frame`] /
//! [`read_frame`]), and deliberately strict: an unknown frame type, an
//! oversized length, a checksum mismatch or trailing payload bytes are all
//! [`FrameError::Protocol`], which the server answers by counting a
//! protocol error and closing the connection.

use std::io::{self, Read, Write};
use std::sync::Arc;

use shark_common::{DataType, Row, Schema, Value};

/// Magic bytes opening every [`Frame::Hello`] payload.
pub const MAGIC: &[u8; 8] = b"SHRKNET1";

/// Protocol version carried in Hello; the server rejects mismatches.
pub const PROTOCOL_VERSION: u32 = 1;

/// Hard cap on one frame's payload length. A header announcing more is a
/// protocol error — it can only be garbage or abuse, never a real message.
pub const MAX_FRAME_BYTES: u32 = 16 * 1024 * 1024;

/// Bytes in the fixed frame header (`len + type + checksum`).
pub const HEADER_BYTES: usize = 4 + 1 + 8;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over a byte slice — the frame checksum.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying socket failed (includes `UnexpectedEof` for a torn
    /// frame cut off by a disconnect).
    Io(io::Error),
    /// The bytes arrived but are not a valid frame: unknown type, length
    /// over [`MAX_FRAME_BYTES`], checksum mismatch, or a payload that does
    /// not decode to its frame type.
    Protocol(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

/// One protocol message. See `docs/wire-protocol.md` for the normative
/// field-by-field layout.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client → server, first frame on every connection: magic + version +
    /// auth token + tenant (rate-class) name.
    Hello {
        /// Shared-secret token; must equal the server's configured token.
        token: String,
        /// Tenant name selecting a [`crate::net::RateClass`] ("" = default).
        tenant: String,
    },
    /// Server → client: the handshake was accepted.
    HelloOk {
        /// The server-side session id backing this connection.
        session_id: u64,
        /// The protocol version the server speaks.
        version: u32,
    },
    /// Client → server: run one SQL statement.
    Query {
        /// Statement text.
        sql: String,
    },
    /// Client → server: register a statement for repeated execution.
    Prepare {
        /// Statement text.
        sql: String,
    },
    /// Server → client: the statement was registered.
    Prepared {
        /// Connection-scoped id to pass to [`Frame::Execute`].
        statement_id: u64,
        /// The statement's plan-cache fingerprint (diagnostic).
        fingerprint: u64,
    },
    /// Client → server: run a prepared statement.
    Execute {
        /// Id from a previous [`Frame::Prepared`].
        statement_id: u64,
    },
    /// Server → client: the result schema, sent before any batch.
    ResultSchema {
        /// The result columns.
        schema: Schema,
    },
    /// Server → client: one batch of result rows.
    ResultBatch {
        /// The rows, each matching the announced schema.
        rows: Vec<Row>,
    },
    /// Server → client: the query finished (successfully or cancelled).
    QueryDone {
        /// Total rows delivered.
        rows: u64,
        /// Result partitions streamed.
        partitions: u64,
        /// Whether the plan came from the shared plan cache.
        plan_cache_hit: bool,
        /// Simulated cluster seconds the query cost.
        sim_seconds: f64,
        /// True when a [`Frame::Cancel`] stopped the stream early.
        cancelled: bool,
    },
    /// Server → client: the request failed. The connection stays usable
    /// unless the error was a protocol violation.
    Error {
        /// Stable error-kind label (`parse`, `execution`, `protocol`, …).
        kind: String,
        /// Human-readable message.
        message: String,
    },
    /// Client → server: stop the in-flight query (checked between
    /// batches).
    Cancel,
    /// Client → server: orderly goodbye.
    Close,
}

impl Frame {
    /// The on-wire type tag.
    pub fn frame_type(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 1,
            Frame::HelloOk { .. } => 2,
            Frame::Query { .. } => 3,
            Frame::Prepare { .. } => 4,
            Frame::Prepared { .. } => 5,
            Frame::Execute { .. } => 6,
            Frame::ResultSchema { .. } => 7,
            Frame::ResultBatch { .. } => 8,
            Frame::QueryDone { .. } => 9,
            Frame::Error { .. } => 10,
            Frame::Cancel => 11,
            Frame::Close => 12,
        }
    }

    /// Encode the payload (header excluded).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Frame::Hello { token, tenant } => {
                buf.extend_from_slice(MAGIC);
                put_u32(&mut buf, PROTOCOL_VERSION);
                put_str(&mut buf, token);
                put_str(&mut buf, tenant);
            }
            Frame::HelloOk {
                session_id,
                version,
            } => {
                put_u64(&mut buf, *session_id);
                put_u32(&mut buf, *version);
            }
            Frame::Query { sql } | Frame::Prepare { sql } => put_str(&mut buf, sql),
            Frame::Prepared {
                statement_id,
                fingerprint,
            } => {
                put_u64(&mut buf, *statement_id);
                put_u64(&mut buf, *fingerprint);
            }
            Frame::Execute { statement_id } => put_u64(&mut buf, *statement_id),
            Frame::ResultSchema { schema } => {
                put_u32(&mut buf, schema.len() as u32);
                for field in schema.fields() {
                    put_str(&mut buf, &field.name);
                    buf.push(type_code(field.data_type));
                }
            }
            Frame::ResultBatch { rows } => {
                put_u32(&mut buf, rows.len() as u32);
                for row in rows {
                    put_u32(&mut buf, row.len() as u32);
                    for value in row.values() {
                        put_value(&mut buf, value);
                    }
                }
            }
            Frame::QueryDone {
                rows,
                partitions,
                plan_cache_hit,
                sim_seconds,
                cancelled,
            } => {
                put_u64(&mut buf, *rows);
                put_u64(&mut buf, *partitions);
                buf.push(u8::from(*plan_cache_hit));
                put_u64(&mut buf, sim_seconds.to_bits());
                buf.push(u8::from(*cancelled));
            }
            Frame::Error { kind, message } => {
                put_str(&mut buf, kind);
                put_str(&mut buf, message);
            }
            Frame::Cancel | Frame::Close => {}
        }
        buf
    }

    /// Decode a payload for `frame_type`. Strict: every byte must be
    /// consumed, every length must be in bounds.
    pub fn decode_payload(frame_type: u8, payload: &[u8]) -> Result<Frame, FrameError> {
        let mut r = Reader::new(payload);
        let frame = match frame_type {
            1 => {
                let magic = r.bytes(MAGIC.len())?;
                if magic != MAGIC {
                    return Err(FrameError::Protocol("bad Hello magic".into()));
                }
                let version = r.u32()?;
                if version != PROTOCOL_VERSION {
                    return Err(FrameError::Protocol(format!(
                        "unsupported protocol version {version} (expected {PROTOCOL_VERSION})"
                    )));
                }
                Frame::Hello {
                    token: r.string()?,
                    tenant: r.string()?,
                }
            }
            2 => Frame::HelloOk {
                session_id: r.u64()?,
                version: r.u32()?,
            },
            3 => Frame::Query { sql: r.string()? },
            4 => Frame::Prepare { sql: r.string()? },
            5 => Frame::Prepared {
                statement_id: r.u64()?,
                fingerprint: r.u64()?,
            },
            6 => Frame::Execute {
                statement_id: r.u64()?,
            },
            7 => {
                let columns = r.u32()? as usize;
                let mut fields = Vec::new();
                for _ in 0..columns {
                    let name = r.string()?;
                    let data_type = data_type(r.u8()?)?;
                    fields.push(shark_common::Field::new(name, data_type));
                }
                Frame::ResultSchema {
                    schema: Schema::new(fields),
                }
            }
            8 => {
                let count = r.u32()? as usize;
                let mut rows = Vec::new();
                for _ in 0..count {
                    let width = r.u32()? as usize;
                    let mut values = Vec::with_capacity(width.min(4096));
                    for _ in 0..width {
                        values.push(r.value()?);
                    }
                    rows.push(Row::new(values));
                }
                Frame::ResultBatch { rows }
            }
            9 => Frame::QueryDone {
                rows: r.u64()?,
                partitions: r.u64()?,
                plan_cache_hit: r.u8()? != 0,
                sim_seconds: f64::from_bits(r.u64()?),
                cancelled: r.u8()? != 0,
            },
            10 => Frame::Error {
                kind: r.string()?,
                message: r.string()?,
            },
            11 => Frame::Cancel,
            12 => Frame::Close,
            other => {
                return Err(FrameError::Protocol(format!("unknown frame type {other}")));
            }
        };
        if !r.is_empty() {
            return Err(FrameError::Protocol(format!(
                "{} trailing payload bytes after frame type {frame_type}",
                r.remaining()
            )));
        }
        Ok(frame)
    }
}

/// Write one frame; returns total bytes written (header + payload).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<u64> {
    let payload = frame.encode_payload();
    let mut header = [0u8; HEADER_BYTES];
    header[0..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[4] = frame.frame_type();
    header[5..13].copy_from_slice(&checksum(&payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(&payload)?;
    w.flush()?;
    Ok((HEADER_BYTES + payload.len()) as u64)
}

/// Read one frame; returns it plus total bytes consumed. A clean EOF
/// before the first header byte surfaces as
/// [`io::ErrorKind::UnexpectedEof`] like any other torn read — callers
/// that want to treat it as an orderly close check for zero bytes read
/// themselves via [`read_header`] + [`read_body`].
pub fn read_frame(r: &mut impl Read) -> Result<(Frame, u64), FrameError> {
    let header = read_header(r)?;
    read_body(r, header)
}

/// A parsed, validated frame header.
#[derive(Debug, Clone, Copy)]
pub struct FrameHeader {
    /// Payload length in bytes (≤ [`MAX_FRAME_BYTES`]).
    pub len: u32,
    /// Frame type tag.
    pub frame_type: u8,
    /// Expected FNV-1a 64 of the payload.
    pub checksum: u64,
}

/// Read and validate the 13-byte header.
pub fn read_header(r: &mut impl Read) -> Result<FrameHeader, FrameError> {
    let mut header = [0u8; HEADER_BYTES];
    r.read_exact(&mut header)?;
    parse_header(&header)
}

/// Parse a header from a buffer (used by the server's non-blocking
/// cancel-peek, which inspects buffered bytes before consuming them).
pub fn parse_header(header: &[u8; HEADER_BYTES]) -> Result<FrameHeader, FrameError> {
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::Protocol(format!(
            "frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap"
        )));
    }
    Ok(FrameHeader {
        len,
        frame_type: header[4],
        checksum: u64::from_le_bytes(header[5..13].try_into().unwrap()),
    })
}

/// Read the payload for a validated header and decode the frame.
pub fn read_body(r: &mut impl Read, header: FrameHeader) -> Result<(Frame, u64), FrameError> {
    let mut payload = vec![0u8; header.len as usize];
    r.read_exact(&mut payload)?;
    if checksum(&payload) != header.checksum {
        return Err(FrameError::Protocol(format!(
            "checksum mismatch on frame type {}",
            header.frame_type
        )));
    }
    let frame = Frame::decode_payload(header.frame_type, &payload)?;
    Ok((frame, (HEADER_BYTES + payload.len()) as u64))
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_value(buf: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Null => buf.push(0),
        Value::Int(v) => {
            buf.push(1);
            put_u64(buf, *v as u64);
        }
        Value::Float(v) => {
            buf.push(2);
            put_u64(buf, v.to_bits());
        }
        Value::Str(s) => {
            buf.push(3);
            put_str(buf, s);
        }
        Value::Bool(v) => {
            buf.push(4);
            buf.push(u8::from(*v));
        }
        Value::Date(v) => {
            buf.push(5);
            put_u32(buf, *v as u32);
        }
    }
}

fn type_code(t: DataType) -> u8 {
    match t {
        DataType::Null => 0,
        DataType::Int => 1,
        DataType::Float => 2,
        DataType::Str => 3,
        DataType::Bool => 4,
        DataType::Date => 5,
    }
}

fn data_type(code: u8) -> Result<DataType, FrameError> {
    Ok(match code {
        0 => DataType::Null,
        1 => DataType::Int,
        2 => DataType::Float,
        3 => DataType::Str,
        4 => DataType::Bool,
        5 => DataType::Date,
        other => {
            return Err(FrameError::Protocol(format!("unknown type code {other}")));
        }
    })
}

/// Bounds-checked payload reader.
struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, at: 0 }
    }

    fn is_empty(&self) -> bool {
        self.at == self.buf.len()
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.remaining() < n {
            return Err(FrameError::Protocol("truncated payload".into()));
        }
        let out = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, FrameError> {
        let len = self.u32()? as usize;
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| FrameError::Protocol("string payload is not UTF-8".into()))
    }

    fn value(&mut self) -> Result<Value, FrameError> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Int(self.u64()? as i64),
            2 => Value::Float(f64::from_bits(self.u64()?)),
            3 => Value::Str(Arc::from(self.string()?.as_str())),
            4 => Value::Bool(self.u8()? != 0),
            5 => Value::Date(self.u32()? as i32),
            other => {
                return Err(FrameError::Protocol(format!("unknown value tag {other}")));
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) {
        let mut buf = Vec::new();
        let written = write_frame(&mut buf, &frame).unwrap();
        assert_eq!(written as usize, buf.len());
        let (decoded, consumed) = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(consumed as usize, buf.len());
        assert_eq!(decoded, frame);
    }

    #[test]
    fn frames_round_trip() {
        round_trip(Frame::Hello {
            token: "secret".into(),
            tenant: "dashboards".into(),
        });
        round_trip(Frame::HelloOk {
            session_id: 42,
            version: PROTOCOL_VERSION,
        });
        round_trip(Frame::Query {
            sql: "SELECT 1".into(),
        });
        round_trip(Frame::Prepare {
            sql: "SELECT * FROM t WHERE k = 7".into(),
        });
        round_trip(Frame::Prepared {
            statement_id: 3,
            fingerprint: 0xdead_beef,
        });
        round_trip(Frame::Execute { statement_id: 3 });
        round_trip(Frame::ResultSchema {
            schema: Schema::from_pairs(&[("id", DataType::Int), ("name", DataType::Str)]),
        });
        round_trip(Frame::ResultBatch {
            rows: vec![
                Row::new(vec![
                    Value::Int(-7),
                    Value::str("x"),
                    Value::Null,
                    Value::Bool(true),
                    Value::Float(2.5),
                    Value::Date(-3),
                ]),
                Row::new(vec![]),
            ],
        });
        round_trip(Frame::QueryDone {
            rows: 100,
            partitions: 4,
            plan_cache_hit: true,
            sim_seconds: 0.25,
            cancelled: false,
        });
        round_trip(Frame::Error {
            kind: "parse".into(),
            message: "nope".into(),
        });
        round_trip(Frame::Cancel);
        round_trip(Frame::Close);
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let mut buf = Vec::new();
        write_frame(
            &mut buf,
            &Frame::Query {
                sql: "SELECT 1".into(),
            },
        )
        .unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0xff;
        match read_frame(&mut buf.as_slice()) {
            Err(FrameError::Protocol(msg)) => assert!(msg.contains("checksum"), "{msg}"),
            other => panic!("expected checksum failure, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_le_bytes());
        buf.push(3);
        buf.extend_from_slice(&0u64.to_le_bytes());
        match read_frame(&mut buf.as_slice()) {
            Err(FrameError::Protocol(msg)) => assert!(msg.contains("cap"), "{msg}"),
            other => panic!("expected oversize rejection, got {other:?}"),
        }
    }

    #[test]
    fn torn_frame_is_an_io_error() {
        let mut buf = Vec::new();
        write_frame(
            &mut buf,
            &Frame::Query {
                sql: "SELECT 1".into(),
            },
        )
        .unwrap();
        buf.truncate(buf.len() - 3);
        match read_frame(&mut buf.as_slice()) {
            Err(FrameError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            other => panic!("expected torn-frame EOF, got {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_and_bad_magic_are_protocol_errors() {
        let mut payload = Frame::Cancel.encode_payload();
        payload.push(9);
        assert!(matches!(
            Frame::decode_payload(11, &payload),
            Err(FrameError::Protocol(_))
        ));
        let mut hello = Frame::Hello {
            token: String::new(),
            tenant: String::new(),
        }
        .encode_payload();
        hello[0] = b'X';
        assert!(matches!(
            Frame::decode_payload(1, &hello),
            Err(FrameError::Protocol(_))
        ));
    }
}
