//! # shark-server
//!
//! The serving layer the Shark paper assumes but a single-owner
//! `SqlSession` cannot provide: one warehouse process, many analysts.
//! A [`SharkServer`] owns one shared [`shark_rdd::RddContext`] (cluster,
//! shuffle, RDD cache), one shared [`shark_sql::Catalog`] (tables + columnar
//! memstore) and hands out lightweight [`SessionHandle`]s that execute
//! concurrently on their callers' threads. Three serving concerns live
//! here:
//!
//! * **Admission control** ([`AdmissionController`]) — a fair FIFO queue
//!   bounding in-flight queries and queue depth, rejecting work beyond it.
//! * **Memory-budgeted memstore** ([`MemstoreManager`]) — per-table byte
//!   accounting over the shared columnar memstore and the RDD cache, with
//!   LRU eviction of whole cached tables under pressure. Eviction drops
//!   only the in-memory copy: per Shark §2.2 the data is recomputed from
//!   lineage (the table's base generator) by the next scan that needs it.
//! * **Metrics** ([`MetricsRegistry`]) — per-query queue wait, execution
//!   time, cache-hit bytes, recomputes and evictions, aggregated per
//!   session and server-wide into a [`ServerReport`].
//! * **Wire serving** ([`net`]) — a length-prefixed, checksummed TCP
//!   protocol ([`net::frame`], spec in `docs/wire-protocol.md`) and a
//!   thread-per-connection frontend ([`NetServer`]) that multiplexes
//!   client connections onto sessions: streamed results are client-paced
//!   through the cursor's prefetch grant, idle connections are reaped on
//!   a deadline wheel, and tenants get [`RateClass`]es layered on the
//!   per-session quotas. Repeated statements skip parse + plan through
//!   the shared [`shark_sql::PlanCache`].
//! * **Durability** ([`wal`]) — when the spill tier is configured, catalog
//!   DDL and spill movements are journaled to a write-ahead log and folded
//!   into periodic snapshot + manifest checkpoints;
//!   [`SharkServer::restore`] replays them and re-adopts the spill frames
//!   still on disk, so a restart comes back at the same catalog epoch with
//!   demoted partitions servable at I/O cost instead of recomputed.

pub mod admission;
pub mod memstore;
pub mod metrics;
pub mod net;
pub mod server;
pub mod spill;
pub mod wal;

pub use admission::{AdmissionController, AdmissionError, AdmissionPermit};
pub use memstore::{EvictionEvent, MemstoreManager};
pub use metrics::{MetricsRegistry, QueryMetrics, ServerReport, SessionStats};
pub use net::{frame, NetConfig, NetCounters, NetServer, RateClass};
pub use server::{QueryCursor, ServerConfig, SessionHandle, SessionQueryResult, SharkServer};
pub use spill::{SpillEvent, SpillManager, StoreOutcome};
pub use wal::{
    read_manifest, read_snapshot, replay_wal, write_manifest, write_snapshot, ManifestEntry,
    SnapshotFile, SpillManifest, TableRecord, WalRecord, WalReplay, WalWriter, MANIFEST_FILE,
    SNAPSHOT_FILE, WAL_FILE,
};
