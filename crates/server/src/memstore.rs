//! The memory-budgeted memstore manager.
//!
//! Layered over the two caches a Shark deployment fills up — the SQL
//! catalog's per-table columnar [`MemTable`]s and the RDD-level
//! [`CacheManager`] — this tracks resident bytes against a single
//! server-wide budget and, under pressure, evicts individual cached
//! *partitions* in globally least-recently-used order (tables first, then
//! cached RDDs). The partition, not the table, is Shark's unit of storage
//! and lineage recovery (§3.1–3.2): one oversized table no longer dumps
//! every hot partition of every workload at once — only the coldest
//! partitions go, and a table is evicted wholesale only when every one of
//! its partitions is cold. Eviction only drops the in-memory copy: Shark
//! keeps exactly one copy of cached data and relies on lineage, not
//! replication (§2.2), so an evicted partition is transparently recomputed
//! from the table's base generator by the next scan that needs it (the
//! partition statistics survive eviction, so map pruning and top-k
//! ordering still work meanwhile). Tables pinned by currently executing
//! queries are never victims, and individual partitions can be pinned too.
//!
//! A second, per-session layer sits under the global budget: each session
//! that loads, creates, or faults in a table joins that table's *owner
//! set* and is charged a proportional share of its resident bytes, and a
//! session over its quota has *its own* least-recently-used partitions
//! evicted first — the tenant-isolation lesson of production multi-tenant
//! SQL serving — before global pressure touches anyone else's.
//!
//! [`MemTable`]: shark_sql::MemTable

use parking_lot::Mutex;
use shark_common::hash::FxHashMap;
use shark_rdd::CacheManager;
use shark_sql::{Catalog, MemTable, TableMeta};
use std::collections::HashSet;
use std::sync::Arc;

use crate::spill::SpillManager;

/// One eviction performed while enforcing a budget or quota.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvictionEvent {
    /// LRU partitions dropped from one cached table during a single
    /// enforcement pass.
    Table {
        /// Table name.
        name: String,
        /// Partition indices dropped, in eviction (coldest-first) order.
        partitions: Vec<usize>,
        /// Bytes freed.
        bytes: u64,
        /// Whether the pass left no partition of the table resident — the
        /// old wholesale eviction, now the every-partition-cold limit case.
        whole_table: bool,
    },
    /// LRU partitions dropped from one cached RDD (e.g. a `.cache()`d
    /// intermediate).
    Rdd {
        /// RDD id.
        id: usize,
        /// Partition indices dropped, in eviction order.
        partitions: Vec<usize>,
        /// Bytes freed.
        bytes: u64,
    },
    /// A `DROP TABLE`d (or replaced) table version reclaimed after the last
    /// catalog snapshot referencing it was released — deferred DDL
    /// reclamation, not memory pressure.
    Dropped {
        /// Table name (a recreated table of the same name is unaffected).
        name: String,
        /// Partition indices that were still resident, in index order.
        partitions: Vec<usize>,
        /// Bytes reclaimed.
        bytes: u64,
    },
    /// LRU partitions *demoted* from one cached table to the spill tier
    /// during a single enforcement pass: the memory copy is gone but the
    /// compressed columnar form survives on disk, so the next scan promotes
    /// it back at I/O cost instead of recomputing it from lineage.
    Demoted {
        /// Table name.
        name: String,
        /// Partition indices demoted, in eviction (coldest-first) order.
        partitions: Vec<usize>,
        /// Memory bytes freed.
        bytes: u64,
        /// Bytes the spill frames occupy on disk.
        spill_bytes: u64,
    },
    /// Demoted partitions a scan faulted back in from the spill tier
    /// (reported by [`MemstoreManager::drain_promotions`]).
    Promoted {
        /// Table name.
        name: String,
        /// Partition indices promoted, in promotion order.
        partitions: Vec<usize>,
        /// Memory bytes the promotions brought back into residency.
        bytes: u64,
    },
}

impl EvictionEvent {
    /// Bytes this eviction freed (or, for a promotion, restored).
    pub fn bytes(&self) -> u64 {
        match self {
            EvictionEvent::Table { bytes, .. }
            | EvictionEvent::Rdd { bytes, .. }
            | EvictionEvent::Dropped { bytes, .. }
            | EvictionEvent::Demoted { bytes, .. }
            | EvictionEvent::Promoted { bytes, .. } => *bytes,
        }
    }

    /// Partitions this eviction dropped (or demoted/promoted).
    pub fn partitions(&self) -> usize {
        match self {
            EvictionEvent::Table { partitions, .. }
            | EvictionEvent::Rdd { partitions, .. }
            | EvictionEvent::Dropped { partitions, .. }
            | EvictionEvent::Demoted { partitions, .. }
            | EvictionEvent::Promoted { partitions, .. } => partitions.len(),
        }
    }
}

#[derive(Default)]
struct MemstoreState {
    /// Whole-table pins taken by in-flight queries: no partition of a
    /// pinned table is ever a victim.
    pins: FxHashMap<String, usize>,
    /// Finer-grained pins on individual partitions.
    partition_pins: FxHashMap<(String, usize), usize>,
    /// Partitions evicted by policy whose reload has not yet been observed;
    /// touching their table counts as a lineage recompute.
    awaiting_recompute: FxHashMap<String, HashSet<usize>>,
    /// The sessions charged for each table: every session that loaded,
    /// created, or faulted it in. Each owner is charged a proportional
    /// share of the table's resident bytes.
    owners: FxHashMap<String, std::collections::BTreeSet<u64>>,
    /// Exact fully-loaded columnar footprint per table, recorded the first
    /// time every partition was observed resident at once. Generators are
    /// deterministic, so this is a *provable* size for any future full load
    /// of the same table — the quota-infeasibility check keys off it.
    known_footprints: FxHashMap<String, u64>,
    evictions: u64,
    evicted_partitions: u64,
    partial_evictions: u64,
    evicted_bytes: u64,
    lineage_recomputes: u64,
    quota_hits: u64,
    quota_evicted_partitions: u64,
    quota_infeasible_rejections: u64,
    /// Rebuild counts of tables since dropped from the catalog, folded in
    /// so the server-wide rebuild metric stays monotonic.
    retired_rebuilds: u64,
    /// Dropped table versions whose storage was reclaimed after their last
    /// referencing snapshot was released.
    deferred_drops_reclaimed: u64,
    /// Bytes those reclamations freed.
    deferred_reclaimed_bytes: u64,
}

/// Tracks table usage recency and enforces the server memory budget plus
/// per-session memory quotas, at partition granularity.
pub struct MemstoreManager {
    budget_bytes: u64,
    session_quota_bytes: u64,
    /// The disk demotion tier. `None` restores the pre-spill behaviour:
    /// eviction drops the partition and lineage recomputes it later.
    spill: Option<Arc<SpillManager>>,
    state: Mutex<MemstoreState>,
}

impl MemstoreManager {
    /// Create a manager enforcing `budget_bytes` across table memstore +
    /// RDD cache, with unlimited per-session quotas.
    pub fn new(budget_bytes: u64) -> MemstoreManager {
        MemstoreManager {
            budget_bytes: budget_bytes.max(1),
            session_quota_bytes: u64::MAX,
            spill: None,
            state: Mutex::new(MemstoreState::default()),
        }
    }

    /// Cap each session's owned resident bytes at `quota_bytes` (tables it
    /// loaded or created). Exceeding the quota evicts that session's own
    /// LRU partitions first.
    pub fn with_session_quota(mut self, quota_bytes: u64) -> MemstoreManager {
        self.session_quota_bytes = quota_bytes.max(1);
        self
    }

    /// Attach a spill tier: evictions of table partitions become
    /// *demotions* that park the compressed columnar form on disk.
    pub fn with_spill(mut self, spill: Arc<SpillManager>) -> MemstoreManager {
        self.spill = Some(spill);
        self
    }

    /// The attached spill tier, if any.
    pub fn spill(&self) -> Option<&Arc<SpillManager>> {
        self.spill.as_ref()
    }

    /// The configured budget in bytes.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// The configured per-session quota in bytes (`u64::MAX` = unlimited).
    pub fn session_quota_bytes(&self) -> u64 {
        self.session_quota_bytes
    }

    /// Mark `tables` as in use by a starting query: pins them (whole-table)
    /// against eviction until [`MemstoreManager::unpin`]. Returns how many
    /// of them had partitions evicted earlier — an *upper bound* on the
    /// tables this query will actually recompute from lineage, since
    /// retained partition statistics may prune the evicted partitions
    /// before the scan ever needs them. The exact per-partition count is
    /// the memtables' rebuild counter (`ServerReport::partition_rebuilds`).
    pub fn pin(&self, tables: &[String]) -> usize {
        let mut state = self.state.lock();
        let mut recomputes = 0;
        for name in tables {
            *state.pins.entry(name.clone()).or_insert(0) += 1;
            if state
                .awaiting_recompute
                .remove(name)
                .map(|parts| !parts.is_empty())
                .unwrap_or(false)
            {
                recomputes += 1;
            }
        }
        state.lineage_recomputes += recomputes as u64;
        recomputes
    }

    /// Release the pins taken by [`MemstoreManager::pin`].
    pub fn unpin(&self, tables: &[String]) {
        let mut state = self.state.lock();
        for name in tables {
            if let Some(count) = state.pins.get_mut(name) {
                *count -= 1;
                if *count == 0 {
                    state.pins.remove(name);
                }
            }
        }
    }

    /// Pin one partition of a table against eviction (finer-grained than
    /// [`MemstoreManager::pin`]; pins nest).
    pub fn pin_partition(&self, table: &str, partition: usize) {
        let mut state = self.state.lock();
        *state
            .partition_pins
            .entry((table.to_string(), partition))
            .or_insert(0) += 1;
    }

    /// Release one pin taken by [`MemstoreManager::pin_partition`].
    pub fn unpin_partition(&self, table: &str, partition: usize) {
        let mut state = self.state.lock();
        let key = (table.to_string(), partition);
        if let Some(count) = state.partition_pins.get_mut(&key) {
            *count -= 1;
            if *count == 0 {
                state.partition_pins.remove(&key);
            }
        }
    }

    /// Add a session to a table's owner set (it loaded, created, or faulted
    /// the table in). A shared table is charged proportionally to every
    /// owner instead of entirely to whoever touched it first.
    pub fn record_owner(&self, table: &str, session_id: u64) {
        let mut state = self.state.lock();
        state
            .owners
            .entry(table.to_string())
            .or_default()
            .insert(session_id);
    }

    /// The sessions charged for a table, in ascending id order.
    pub fn owners(&self, table: &str) -> Vec<u64> {
        self.state
            .lock()
            .owners
            .get(table)
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Resident bytes currently charged to one session: each owned table's
    /// memstore bytes divided by its number of owners.
    pub fn session_bytes(&self, session_id: u64, catalog: &Catalog) -> u64 {
        let state = self.state.lock();
        Self::session_bytes_locked(&state, session_id, catalog)
    }

    fn session_bytes_locked(state: &MemstoreState, session_id: u64, catalog: &Catalog) -> u64 {
        catalog
            .cached_tables()
            .into_iter()
            .filter_map(|t| {
                let owners = state.owners.get(&t.name)?;
                if !owners.contains(&session_id) {
                    return None;
                }
                let bytes = t.cached.as_ref().map(|m| m.memory_bytes())?;
                // Exact apportionment: every owner is charged `bytes / n`,
                // and the first `bytes % n` owners in id order absorb one
                // extra byte each, so the shares always sum to the table's
                // resident bytes (truncating division leaked the remainder,
                // leaving tables partially uncharged).
                let n = owners.len() as u64;
                let rank = owners.iter().position(|o| *o == session_id).unwrap_or(0) as u64;
                Some(bytes / n + u64::from(rank < bytes % n))
            })
            .sum()
    }

    /// Remove a closing session from every owner set, re-apportioning each
    /// co-owned table's bytes over the remaining owners. Without this, a
    /// closed session kept absorbing its share of a shared table forever,
    /// under-charging the sessions still using it (stale owner shares).
    pub fn release_session(&self, session_id: u64) {
        let mut state = self.state.lock();
        state.owners.retain(|_, set| {
            set.remove(&session_id);
            !set.is_empty()
        });
    }

    /// Resident bytes currently charged against the budget.
    pub fn resident_bytes(&self, catalog: &Catalog, rdd_cache: &CacheManager) -> u64 {
        catalog.memstore_bytes() + rdd_cache.total_bytes()
    }

    /// Evict unpinned table partitions in globally-LRU order until `need`
    /// bytes are freed (or no candidate is left). With `owner_filter`, only
    /// tables owned by that session are candidates; with `table_filter`,
    /// only that table's partitions are. When a spill tier is attached the
    /// eviction is a *demotion*: the partition's compressed form is parked
    /// on disk and only degraded to a plain drop (lineage recompute) if the
    /// spill write fails or the disk budget displaces the frame. Returns
    /// memory bytes freed and appends aggregated events per victim table.
    fn evict_table_partitions(
        state: &mut MemstoreState,
        catalog: &Catalog,
        need: u64,
        owner_filter: Option<u64>,
        table_filter: Option<&str>,
        spill: Option<&Arc<SpillManager>>,
        events: &mut Vec<EvictionEvent>,
    ) -> u64 {
        // Gather every evictable partition: unpinned table, unpinned
        // partition, matching owner when session-scoped.
        let mut candidates: Vec<(u64, String, Arc<MemTable>, usize, u64)> = Vec::new();
        for table in catalog.cached_tables() {
            if state.pins.contains_key(&table.name) {
                continue;
            }
            if let Some(only) = table_filter {
                if table.name != only {
                    continue;
                }
            }
            if let Some(session) = owner_filter {
                let owned = state
                    .owners
                    .get(&table.name)
                    .map(|set| set.contains(&session))
                    .unwrap_or(false);
                if !owned {
                    continue;
                }
            }
            let Some(mem) = table.cached.clone() else {
                continue;
            };
            for c in mem.lru_candidates() {
                if state
                    .partition_pins
                    .contains_key(&(table.name.clone(), c.partition))
                {
                    continue;
                }
                candidates.push((
                    c.last_tick,
                    table.name.clone(),
                    mem.clone(),
                    c.partition,
                    table.version(),
                ));
            }
        }
        // Coldest first; ties broken by name/partition for determinism.
        candidates.sort_by(|a, b| (a.0, &a.1, a.3).cmp(&(b.0, &b.1, b.3)));

        let mut freed = 0u64;
        // Aggregate per table, preserving first-eviction order; demoted and
        // dropped partitions become separate events.
        struct Victim {
            name: String,
            mem: Arc<MemTable>,
            demoted: Vec<usize>,
            demoted_bytes: u64,
            spill_bytes: u64,
            dropped: Vec<usize>,
            dropped_bytes: u64,
        }
        let mut victims: Vec<Victim> = Vec::new();
        for (_tick, name, mem, partition, table_version) in candidates {
            if freed >= need {
                break;
            }
            let bytes;
            // (memory bytes, spill-frame bytes) when the demotion stuck.
            let mut demoted: Option<u64> = None;
            match spill {
                Some(spill) => {
                    let Some(columnar) = mem.take_partition(partition) else {
                        // A failure-path drop raced us; nothing freed here.
                        continue;
                    };
                    bytes = columnar.memory_bytes() as u64;
                    // Install the fault-in source lazily so tables created
                    // after server start (CTAS) are covered too.
                    if !mem.has_spill_source() {
                        mem.set_spill_source(spill.clone());
                    }
                    // An unwritable spill frame (the Err arm) degrades to a
                    // plain drop — never surface an I/O error from eviction.
                    if let Ok(outcome) = spill.store(&name, partition, &columnar, table_version) {
                        let mut self_displaced = false;
                        for (dt, dp) in outcome.displaced {
                            // Whatever the disk budget displaced lost
                            // its last copy: lineage recompute ahead.
                            self_displaced |= dt == name && dp == partition;
                            state.awaiting_recompute.entry(dt).or_default().insert(dp);
                        }
                        if !self_displaced {
                            demoted = Some(outcome.spill_bytes);
                        }
                    }
                }
                None => {
                    bytes = mem.evict_partition(partition);
                    if bytes == 0 {
                        continue;
                    }
                }
            }
            freed += bytes;
            let victim = match victims.iter_mut().find(|v| v.name == name) {
                Some(v) => v,
                None => {
                    victims.push(Victim {
                        name: name.clone(),
                        mem,
                        demoted: Vec::new(),
                        demoted_bytes: 0,
                        spill_bytes: 0,
                        dropped: Vec::new(),
                        dropped_bytes: 0,
                    });
                    victims.last_mut().unwrap()
                }
            };
            match demoted {
                Some(spill_bytes) => {
                    victim.demoted.push(partition);
                    victim.demoted_bytes += bytes;
                    victim.spill_bytes += spill_bytes;
                }
                None => {
                    state
                        .awaiting_recompute
                        .entry(name)
                        .or_default()
                        .insert(partition);
                    victim.dropped.push(partition);
                    victim.dropped_bytes += bytes;
                }
            }
        }
        for v in victims {
            let whole_table = v.mem.loaded_partitions() == 0;
            state.evictions += 1;
            state.evicted_partitions += (v.demoted.len() + v.dropped.len()) as u64;
            if !whole_table {
                state.partial_evictions += 1;
            }
            state.evicted_bytes += v.demoted_bytes + v.dropped_bytes;
            if !v.demoted.is_empty() {
                events.push(EvictionEvent::Demoted {
                    name: v.name.clone(),
                    partitions: v.demoted,
                    bytes: v.demoted_bytes,
                    spill_bytes: v.spill_bytes,
                });
            }
            if !v.dropped.is_empty() {
                events.push(EvictionEvent::Table {
                    name: v.name,
                    partitions: v.dropped,
                    bytes: v.dropped_bytes,
                    whole_table,
                });
            }
        }
        freed
    }

    /// Evict unpinned RDD-cache partitions in LRU order until `need` bytes
    /// are freed. Returns bytes freed and appends one aggregated event per
    /// victim RDD.
    fn evict_rdd_partitions(
        state: &mut MemstoreState,
        rdd_cache: &CacheManager,
        need: u64,
        events: &mut Vec<EvictionEvent>,
    ) -> u64 {
        let mut candidates = rdd_cache.lru_candidates();
        candidates.sort_by_key(|c| (c.last_tick, c.rdd_id, c.partition));
        let mut freed = 0u64;
        let mut victims: Vec<(usize, Vec<usize>, u64)> = Vec::new();
        for c in candidates {
            if freed >= need {
                break;
            }
            let stats = rdd_cache.evict_partition(c.rdd_id, c.partition);
            if stats.partitions == 0 {
                continue;
            }
            freed += stats.bytes;
            match victims.iter_mut().find(|(id, _, _)| *id == c.rdd_id) {
                Some((_, parts, total)) => {
                    parts.push(c.partition);
                    *total += stats.bytes;
                }
                None => victims.push((c.rdd_id, vec![c.partition], stats.bytes)),
            }
        }
        for (id, partitions, bytes) in victims {
            state.evictions += 1;
            state.evicted_partitions += partitions.len() as u64;
            state.evicted_bytes += bytes;
            events.push(EvictionEvent::Rdd {
                id,
                partitions,
                bytes,
            });
        }
        freed
    }

    /// Bring residency back under the budget by evicting the globally
    /// least-recently-used unpinned table partitions first, then LRU
    /// RDD-cache partitions — freeing roughly the overshoot instead of
    /// dumping whole tables. Returns the evictions performed (empty when
    /// already under budget or when everything over budget is pinned).
    pub fn enforce(&self, catalog: &Catalog, rdd_cache: &CacheManager) -> Vec<EvictionEvent> {
        let mut events = Vec::new();
        loop {
            // Progress is judged by *measured* residency, never by the
            // per-eviction byte estimates: a pass that claimed to free
            // enough but measures above budget (stale estimates, racing
            // loads) triggers another pass instead of returning early.
            let resident = self.resident_bytes(catalog, rdd_cache);
            if resident <= self.budget_bytes {
                break;
            }
            let need = resident - self.budget_bytes;
            // Hold the state lock across victim selection AND eviction:
            // otherwise a query admitted in between could pin the chosen
            // partition and still lose it, and two concurrent enforce()
            // calls could both evict (and double-count) the same victim.
            let mut state = self.state.lock();
            let freed = Self::evict_table_partitions(
                &mut state,
                catalog,
                need,
                None,
                None,
                self.spill.as_ref(),
                &mut events,
            );
            let rdd_freed = if freed < need {
                Self::evict_rdd_partitions(&mut state, rdd_cache, need - freed, &mut events)
            } else {
                0
            };
            if freed + rdd_freed == 0 {
                // No unpinned candidate is left; the measured residency
                // cannot come down this pass — give up, don't spin.
                break;
            }
        }
        events
    }

    /// Demote every unpinned resident partition of one table to the spill
    /// tier (plain eviction when no tier is attached), regardless of the
    /// budget — the administrative path tests and benchmarks use to stage a
    /// fully demoted table. Returns the events performed.
    pub fn demote_table(&self, catalog: &Catalog, name: &str) -> Vec<EvictionEvent> {
        let mut events = Vec::new();
        let mut state = self.state.lock();
        Self::evict_table_partitions(
            &mut state,
            catalog,
            u64::MAX,
            None,
            Some(name),
            self.spill.as_ref(),
            &mut events,
        );
        events
    }

    /// Promotions scans performed since the last drain, aggregated into
    /// one [`EvictionEvent::Promoted`] per table — the server turns these
    /// into trace events and report counters.
    pub fn drain_promotions(&self) -> Vec<EvictionEvent> {
        let Some(spill) = &self.spill else {
            return Vec::new();
        };
        let mut by_table: Vec<(String, Vec<usize>, u64)> = Vec::new();
        for (name, partition, bytes) in spill.drain_promotions() {
            match by_table.iter_mut().find(|(n, _, _)| *n == name) {
                Some((_, parts, total)) => {
                    parts.push(partition);
                    *total += bytes;
                }
                None => by_table.push((name, vec![partition], bytes)),
            }
        }
        by_table
            .into_iter()
            .map(|(name, partitions, bytes)| EvictionEvent::Promoted {
                name,
                partitions,
                bytes,
            })
            .collect()
    }

    /// Bring one session's owned residency back under the per-session
    /// quota, evicting *that session's* least-recently-used unpinned
    /// partitions first. A no-op when quotas are unlimited or the session
    /// is within its quota. Returns the evictions performed.
    pub fn enforce_session_quota(&self, session_id: u64, catalog: &Catalog) -> Vec<EvictionEvent> {
        let mut events = Vec::new();
        if self.session_quota_bytes == u64::MAX {
            return events;
        }
        let mut hit_recorded = false;
        loop {
            let mut state = self.state.lock();
            let owned = Self::session_bytes_locked(&state, session_id, catalog);
            if owned <= self.session_quota_bytes {
                break;
            }
            if !hit_recorded {
                hit_recorded = true;
                state.quota_hits += 1;
            }
            let need = owned - self.session_quota_bytes;
            let before = events.iter().map(EvictionEvent::partitions).sum::<usize>();
            let freed = Self::evict_table_partitions(
                &mut state,
                catalog,
                need,
                Some(session_id),
                None,
                self.spill.as_ref(),
                &mut events,
            );
            let evicted_now = events.iter().map(EvictionEvent::partitions).sum::<usize>() - before;
            state.quota_evicted_partitions += evicted_now as u64;
            if freed == 0 {
                // Everything the session still holds is pinned.
                break;
            }
        }
        events
    }

    /// Record the table's exact fully-loaded columnar footprint once every
    /// partition is resident at the same time. Row generators are
    /// deterministic, so the measured size is a provable size for any future
    /// full load of the same table — not an estimate like sampling one
    /// partition. A no-op while the table is only partially resident.
    pub fn record_footprint_if_full(&self, table: &TableMeta) {
        let Some(mem) = table.cached.as_ref() else {
            return;
        };
        if table.num_partitions == 0 || mem.loaded_partitions() != table.num_partitions {
            return;
        }
        let bytes = mem.memory_bytes();
        if bytes == 0 {
            return;
        }
        self.state
            .lock()
            .known_footprints
            .insert(table.name.clone(), bytes);
    }

    /// The recorded exact full-load footprint of a table, if a full load
    /// has been observed since the table (version) was created.
    pub fn known_footprint(&self, table: &str) -> Option<u64> {
        self.state.lock().known_footprints.get(table).copied()
    }

    /// Quota-feasibility check for an explicit full load: when the table's
    /// recorded footprint provably exceeds the per-session quota, admitting
    /// the load could only thrash — every loaded partition would be evicted
    /// again by quota enforcement before the load even finishes. Returns
    /// `Some((footprint, quota))` (and bumps the rejection gauge) when the
    /// load must be rejected; `None` when it may proceed, including when no
    /// full load has been observed yet (a first load is how the footprint
    /// becomes known).
    pub fn reject_infeasible_load(&self, table: &str) -> Option<(u64, u64)> {
        if self.session_quota_bytes == u64::MAX {
            return None;
        }
        let mut state = self.state.lock();
        let footprint = *state.known_footprints.get(table)?;
        if footprint > self.session_quota_bytes {
            state.quota_infeasible_rejections += 1;
            Some((footprint, self.session_quota_bytes))
        } else {
            None
        }
    }

    /// Loads rejected at admission time because their recorded footprint
    /// provably exceeded the per-session quota.
    pub fn quota_infeasible_rejections(&self) -> u64 {
        self.state.lock().quota_infeasible_rejections
    }

    /// Reclaim every dropped table version whose last referencing catalog
    /// snapshot has been released, then fold the catalog's reclamation log
    /// into this manager's accounting, emitting one
    /// [`EvictionEvent::Dropped`] per reclaimed version. The catalog also
    /// reclaims opportunistically at DDL/snapshot points, so this may drain
    /// records reclaimed earlier — accounting is log-based and therefore
    /// independent of *where* the reclamation happened. Versions still
    /// referenced by a pinned snapshot (an open cursor, an in-flight query)
    /// are left alone — their bytes show up in `Catalog::deferred_drop_bytes`
    /// until the pins close. Name-keyed bookkeeping is *not* touched here:
    /// it was cleared by [`MemstoreManager::forget`] at drop time and may
    /// since belong to a recreated table of the same name.
    pub fn reclaim_dropped(&self, catalog: &Catalog) -> Vec<EvictionEvent> {
        catalog.reclaim_unreferenced();
        let mut events = Vec::new();
        for record in catalog.drain_reclaimed() {
            let mut state = self.state.lock();
            state.deferred_drops_reclaimed += 1;
            state.deferred_reclaimed_bytes += record.bytes;
            // The version's lineage rebuilds move from the catalog's
            // deferred share into the retired total, keeping the
            // server-wide rebuild counter monotonic across drop → reclaim.
            state.retired_rebuilds += record.rebuilds;
            drop(state);
            events.push(EvictionEvent::Dropped {
                name: record.name,
                partitions: record.partitions,
                bytes: record.bytes,
            });
        }
        events
    }

    /// Dropped table versions reclaimed so far (deferred DDL reclamation).
    pub fn deferred_drops_reclaimed(&self) -> u64 {
        self.state.lock().deferred_drops_reclaimed
    }

    /// Bytes freed by deferred-drop reclamations.
    pub fn deferred_reclaimed_bytes(&self) -> u64 {
        self.state.lock().deferred_reclaimed_bytes
    }

    /// Forget all bookkeeping for a table (call when it is dropped from the
    /// catalog, so a future table of the same name starts clean).
    pub fn forget(&self, table: &str) {
        let mut state = self.state.lock();
        state.pins.remove(table);
        state.partition_pins.retain(|(name, _), _| name != table);
        state.awaiting_recompute.remove(table);
        state.owners.remove(table);
        state.known_footprints.remove(table);
        drop(state);
        // Spilled frames of the dropped table are unreachable now; a
        // recreated table of the same name must not fault in stale data.
        if let Some(spill) = &self.spill {
            spill.remove_table(table);
        }
    }

    /// Total eviction events recorded so far (one per victim table or RDD
    /// per enforcement pass).
    pub fn evictions(&self) -> u64 {
        self.state.lock().evictions
    }

    /// Total individual partitions evicted by policy.
    pub fn evicted_partitions(&self) -> u64 {
        self.state.lock().evicted_partitions
    }

    /// Eviction events that left their table partially resident — the
    /// partition-granular evictions the whole-table policy could not do.
    pub fn partial_evictions(&self) -> u64 {
        self.state.lock().partial_evictions
    }

    /// Total bytes freed by policy evictions.
    pub fn evicted_bytes(&self) -> u64 {
        self.state.lock().evicted_bytes
    }

    /// Times a session was found over its quota by
    /// [`MemstoreManager::enforce_session_quota`].
    pub fn quota_hits(&self) -> u64 {
        self.state.lock().quota_hits
    }

    /// Partitions evicted because their owning session exceeded its quota.
    pub fn quota_evicted_partitions(&self) -> u64 {
        self.state.lock().quota_evicted_partitions
    }

    /// Tables whose eviction was later followed by a re-access. This is a
    /// re-access signal, not an exact recompute count: map pruning over
    /// retained statistics can satisfy the re-access without rebuilding
    /// the evicted partitions. For the exact number of partitions rebuilt
    /// from lineage, see `ServerReport::partition_rebuilds`.
    pub fn lineage_recomputes(&self) -> u64 {
        self.state.lock().lineage_recomputes
    }

    /// Rebuild counts of dropped table versions already reclaimed (folded
    /// in by [`MemstoreManager::reclaim_dropped`]; versions still awaiting
    /// reclamation are counted by `Catalog::deferred_drop_rebuilds`).
    pub fn retired_rebuilds(&self) -> u64 {
        self.state.lock().retired_rebuilds
    }

    /// Tables currently pinned by in-flight queries or open cursors,
    /// sorted by name.
    pub fn pinned_tables(&self) -> Vec<String> {
        let mut names: Vec<String> = self.state.lock().pins.keys().cloned().collect();
        names.sort();
        names
    }

    /// Partitions of `table` currently pinned individually (by streaming
    /// cursors that have delivered them), in ascending index order.
    pub fn pinned_partitions(&self, table: &str) -> Vec<usize> {
        let mut parts: Vec<usize> = self
            .state
            .lock()
            .partition_pins
            .keys()
            .filter(|(name, _)| name == table)
            .map(|(_, partition)| *partition)
            .collect();
        parts.sort_unstable();
        parts
    }

    /// Tables with evicted-and-not-yet-reloaded partitions, sorted by name.
    pub fn awaiting_recompute(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .state
            .lock()
            .awaiting_recompute
            .iter()
            .filter(|(_, parts)| !parts.is_empty())
            .map(|(name, _)| name.clone())
            .collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shark_common::{row, DataType, Schema};
    use shark_sql::TableMeta;
    use std::sync::Arc;

    fn catalog_with_tables(names: &[&str]) -> Arc<Catalog> {
        let catalog = Arc::new(Catalog::new());
        for name in names {
            let schema = Schema::from_pairs(&[("x", DataType::Int), ("s", DataType::Str)]);
            catalog.register(
                TableMeta::new(name, schema, 2, |p| {
                    (0..200)
                        .map(|i| row![(p * 1000 + i) as i64, format!("value-{p}-{i}")])
                        .collect()
                })
                .with_cache(2),
            );
        }
        catalog
    }

    fn load_all(catalog: &Catalog) {
        for table in catalog.cached_tables() {
            let mem = table.cached.as_ref().unwrap();
            for p in 0..table.num_partitions {
                let rows = (table.base)(p);
                mem.put(
                    p,
                    Arc::new(shark_columnar::ColumnarPartition::from_rows(
                        &table.schema,
                        &rows,
                    )),
                );
            }
        }
    }

    /// Touch every partition of a table, making it the most recently used.
    fn touch_table(catalog: &Catalog, name: &str) {
        let table = catalog.get(name).unwrap();
        let mem = table.cached.as_ref().unwrap();
        for p in 0..table.num_partitions {
            mem.touch(p);
        }
    }

    #[test]
    fn evicts_lru_partitions_and_spares_pinned_tables() {
        let catalog = catalog_with_tables(&["a", "b", "c"]);
        load_all(&catalog);
        let rdd_cache = CacheManager::new();
        let per_table = catalog.memstore_bytes() / 3;
        // Budget fits two and a half tables: one partition must go.
        let manager = MemstoreManager::new(per_table * 2 + per_table / 2);
        // Touch order: a (oldest), b, c — and pin a, so b's LRU partition
        // is the victim.
        touch_table(&catalog, "a");
        touch_table(&catalog, "b");
        touch_table(&catalog, "c");
        manager.pin(&["a".into()]);
        let events = manager.enforce(&catalog, &rdd_cache);
        assert_eq!(events.len(), 1);
        match &events[0] {
            EvictionEvent::Table {
                name,
                partitions,
                bytes,
                whole_table,
            } => {
                assert_eq!(name, "b");
                // Half a table was over budget: one partition suffices.
                assert_eq!(partitions, &vec![0]);
                assert!(*bytes > 0);
                assert!(!whole_table, "b must survive partially resident");
            }
            other => panic!("expected table eviction, got {other:?}"),
        }
        // b is partially resident: one partition evicted, one still loaded.
        let b = catalog.get("b").unwrap();
        assert_eq!(b.cached.as_ref().unwrap().loaded_partitions(), 1);
        assert_eq!(manager.evictions(), 1);
        assert_eq!(manager.evicted_partitions(), 1);
        assert_eq!(manager.partial_evictions(), 1);
        assert_eq!(manager.awaiting_recompute(), vec!["b".to_string()]);
        // Re-accessing b counts as a lineage recompute.
        assert_eq!(manager.pin(&["b".into()]), 1);
        assert_eq!(manager.lineage_recomputes(), 1);
        assert!(manager.awaiting_recompute().is_empty());
    }

    #[test]
    fn enforcement_frees_roughly_the_overshoot_not_whole_tables() {
        let catalog = catalog_with_tables(&["a", "b"]);
        load_all(&catalog);
        let rdd_cache = CacheManager::new();
        let total = catalog.memstore_bytes();
        let largest_partition = catalog
            .cached_tables()
            .iter()
            .flat_map(|t| {
                let mem = t.cached.as_ref().unwrap();
                (0..t.num_partitions)
                    .map(|p| mem.partition_bytes(p))
                    .collect::<Vec<_>>()
            })
            .max()
            .unwrap();
        // Need exactly one partition's worth of space.
        let need = largest_partition;
        let manager = MemstoreManager::new(total - need);
        let events = manager.enforce(&catalog, &rdd_cache);
        let freed: u64 = events.iter().map(EvictionEvent::bytes).sum();
        assert!(freed >= need, "must free at least the overshoot");
        assert!(
            freed <= need + largest_partition,
            "freed {freed} but only {need} was needed (partition ≤ {largest_partition})"
        );
        // 4 partitions resident, ~1 needed: at most 2 may go (overshoot by
        // at most one partition), so at least 2 stay.
        let resident: usize = catalog
            .cached_tables()
            .iter()
            .map(|t| t.cached.as_ref().unwrap().loaded_partitions())
            .sum();
        assert!(resident >= 2, "whole-store dump: only {resident} left");
    }

    #[test]
    fn pinned_partition_survives_while_colder_neighbors_go() {
        let catalog = catalog_with_tables(&["a"]);
        load_all(&catalog);
        let rdd_cache = CacheManager::new();
        let manager = MemstoreManager::new(1);
        // Partition 0 is the coldest — and pinned.
        manager.pin_partition("a", 0);
        let events = manager.enforce(&catalog, &rdd_cache);
        assert_eq!(events.len(), 1);
        match &events[0] {
            EvictionEvent::Table { partitions, .. } => assert_eq!(partitions, &vec![1]),
            other => panic!("expected table eviction, got {other:?}"),
        }
        let mem = catalog.get("a").unwrap().cached.clone().unwrap();
        assert!(mem.is_loaded(0), "pinned partition must survive");
        assert!(!mem.is_loaded(1));
        // Unpinning makes it evictable.
        manager.unpin_partition("a", 0);
        let events = manager.enforce(&catalog, &rdd_cache);
        assert_eq!(events.len(), 1);
        assert!(!mem.is_loaded(0));
    }

    #[test]
    fn enforce_is_a_noop_under_budget() {
        let catalog = catalog_with_tables(&["a"]);
        load_all(&catalog);
        let rdd_cache = CacheManager::new();
        let manager = MemstoreManager::new(u64::MAX);
        assert!(manager.enforce(&catalog, &rdd_cache).is_empty());
        assert_eq!(manager.evictions(), 0);
    }

    #[test]
    fn falls_back_to_rdd_cache_when_tables_are_pinned() {
        let catalog = catalog_with_tables(&["a"]);
        load_all(&catalog);
        let rdd_cache = CacheManager::new();
        rdd_cache.put(7, 0, Arc::new(vec![0u8; 16]), 0, 1 << 20);
        let manager = MemstoreManager::new(catalog.memstore_bytes());
        manager.pin(&["a".into()]);
        let events = manager.enforce(&catalog, &rdd_cache);
        assert_eq!(events.len(), 1);
        assert!(matches!(
            &events[0],
            EvictionEvent::Rdd { id: 7, partitions, .. } if partitions == &vec![0]
        ));
        // Table a survived; nothing else to evict even though still over.
        assert!(catalog.memstore_bytes() > 0);
        assert!(manager.enforce(&catalog, &rdd_cache).is_empty());
    }

    #[test]
    fn session_quota_evicts_own_partitions_first() {
        let catalog = catalog_with_tables(&["mine", "theirs"]);
        load_all(&catalog);
        let per_table = catalog.memstore_bytes() / 2;
        let manager = MemstoreManager::new(u64::MAX).with_session_quota(per_table / 2);
        manager.record_owner("mine", 1);
        manager.record_owner("theirs", 2);
        // Session 2 is under quota (owns one table of two partitions but we
        // only enforce for session 1 here).
        let events = manager.enforce_session_quota(1, &catalog);
        assert!(!events.is_empty());
        for event in &events {
            match event {
                EvictionEvent::Table { name, .. } => assert_eq!(name, "mine"),
                other => panic!("unexpected event {other:?}"),
            }
        }
        assert!(manager.session_bytes(1, &catalog) <= per_table / 2);
        // The other session's table is untouched.
        let theirs = catalog.get("theirs").unwrap();
        assert_eq!(theirs.cached.as_ref().unwrap().loaded_partitions(), 2);
        assert_eq!(manager.quota_hits(), 1);
        assert!(manager.quota_evicted_partitions() > 0);
        // Within quota now: enforcing again is a no-op.
        assert!(manager.enforce_session_quota(1, &catalog).is_empty());
        assert_eq!(manager.quota_hits(), 1);
    }

    #[test]
    fn infeasible_loads_are_rejected_once_the_footprint_is_known() {
        let catalog = catalog_with_tables(&["big"]);
        let table = catalog.get("big").unwrap();
        let quota = 64u64;
        let manager = MemstoreManager::new(u64::MAX).with_session_quota(quota);
        // Nothing recorded yet: the first (discovering) load must be
        // admitted — that is how the footprint becomes known.
        manager.record_footprint_if_full(&table);
        assert_eq!(manager.known_footprint("big"), None);
        assert_eq!(manager.reject_infeasible_load("big"), None);
        load_all(&catalog);
        manager.record_footprint_if_full(&table);
        let footprint = manager.known_footprint("big").unwrap();
        assert!(footprint > quota, "test table must exceed the tiny quota");
        assert_eq!(
            manager.reject_infeasible_load("big"),
            Some((footprint, quota))
        );
        assert_eq!(manager.quota_infeasible_rejections(), 1);
        // Dropping the table clears the recorded footprint: a recreated
        // table of the same name starts clean.
        manager.forget("big");
        assert_eq!(manager.known_footprint("big"), None);
        assert_eq!(manager.reject_infeasible_load("big"), None);
        assert_eq!(manager.quota_infeasible_rejections(), 1);
    }

    #[test]
    fn feasible_and_unlimited_quota_loads_pass_the_check() {
        let catalog = catalog_with_tables(&["t"]);
        let table = catalog.get("t").unwrap();
        load_all(&catalog);
        let unlimited = MemstoreManager::new(u64::MAX);
        unlimited.record_footprint_if_full(&table);
        assert_eq!(unlimited.reject_infeasible_load("t"), None);
        let roomy = MemstoreManager::new(u64::MAX).with_session_quota(u64::MAX / 2);
        roomy.record_footprint_if_full(&table);
        assert_eq!(roomy.reject_infeasible_load("t"), None);
        assert_eq!(roomy.quota_infeasible_rejections(), 0);
    }

    #[test]
    fn unlimited_quota_never_evicts() {
        let catalog = catalog_with_tables(&["a"]);
        load_all(&catalog);
        let manager = MemstoreManager::new(u64::MAX);
        manager.record_owner("a", 1);
        assert!(manager.enforce_session_quota(1, &catalog).is_empty());
        assert_eq!(manager.quota_hits(), 0);
    }

    #[test]
    fn reclaim_dropped_waits_for_snapshot_release_and_accounts_bytes() {
        let catalog = catalog_with_tables(&["gone"]);
        load_all(&catalog);
        let manager = MemstoreManager::new(u64::MAX);
        let bytes = catalog.memstore_bytes();
        assert!(bytes > 0);
        let pin = catalog.snapshot();
        catalog.drop_table("gone").unwrap();
        // Still referenced by the pinned snapshot: nothing reclaimable, the
        // bytes show up as deferred instead, and budget enforcement does
        // not see (or evict) the dropped version.
        assert!(manager.reclaim_dropped(&catalog).is_empty());
        assert_eq!(catalog.deferred_drop_bytes(), bytes);
        assert_eq!(catalog.memstore_bytes(), 0);
        drop(pin);
        let events = manager.reclaim_dropped(&catalog);
        assert_eq!(events.len(), 1);
        match &events[0] {
            EvictionEvent::Dropped {
                name,
                partitions,
                bytes: freed,
            } => {
                assert_eq!(name, "gone");
                assert_eq!(partitions, &vec![0, 1]);
                assert_eq!(*freed, bytes);
            }
            other => panic!("expected a dropped-table reclamation, got {other:?}"),
        }
        assert_eq!(manager.deferred_drops_reclaimed(), 1);
        assert_eq!(manager.deferred_reclaimed_bytes(), bytes);
        assert_eq!(catalog.deferred_drop_bytes(), 0);
        // Idempotent.
        assert!(manager.reclaim_dropped(&catalog).is_empty());
    }

    #[test]
    fn owner_sets_accumulate_and_are_forgotten_on_drop() {
        let manager = MemstoreManager::new(u64::MAX);
        manager.record_owner("t", 3);
        manager.record_owner("t", 9);
        manager.record_owner("t", 3); // re-faulting the same table is idempotent
        assert_eq!(manager.owners("t"), vec![3, 9]);
        manager.forget("t");
        assert!(manager.owners("t").is_empty());
    }

    #[test]
    fn shared_tables_charge_each_owner_a_proportional_share() {
        let catalog = catalog_with_tables(&["shared", "solo"]);
        load_all(&catalog);
        let manager = MemstoreManager::new(u64::MAX);
        let shared_bytes = catalog
            .get("shared")
            .unwrap()
            .cached
            .as_ref()
            .unwrap()
            .memory_bytes();
        let solo_bytes = catalog
            .get("solo")
            .unwrap()
            .cached
            .as_ref()
            .unwrap()
            .memory_bytes();
        manager.record_owner("shared", 1);
        manager.record_owner("shared", 2);
        manager.record_owner("solo", 1);
        // The lowest-id owner absorbs the division remainder, so the
        // per-session charges always sum to the tables' resident bytes.
        assert_eq!(
            manager.session_bytes(1, &catalog),
            shared_bytes / 2 + shared_bytes % 2 + solo_bytes
        );
        assert_eq!(manager.session_bytes(2, &catalog), shared_bytes / 2);
        assert_eq!(manager.session_bytes(3, &catalog), 0);
        assert_eq!(
            manager.session_bytes(1, &catalog) + manager.session_bytes(2, &catalog),
            shared_bytes + solo_bytes,
            "shares must sum to the resident bytes"
        );
    }

    #[test]
    fn owner_shares_sum_exactly_for_any_owner_count() {
        let catalog = catalog_with_tables(&["shared"]);
        load_all(&catalog);
        let manager = MemstoreManager::new(u64::MAX);
        let bytes = catalog
            .get("shared")
            .unwrap()
            .cached
            .as_ref()
            .unwrap()
            .memory_bytes();
        // 3 owners rarely divide the byte count evenly — the remainder must
        // not be lost.
        for session in [11u64, 22, 33] {
            manager.record_owner("shared", session);
        }
        let total: u64 = [11u64, 22, 33]
            .iter()
            .map(|&s| manager.session_bytes(s, &catalog))
            .sum();
        assert_eq!(total, bytes, "shares must sum to the table's bytes");
    }

    #[test]
    fn closing_a_session_reapportions_shared_tables() {
        let catalog = catalog_with_tables(&["shared"]);
        load_all(&catalog);
        let manager = MemstoreManager::new(u64::MAX);
        let bytes = catalog
            .get("shared")
            .unwrap()
            .cached
            .as_ref()
            .unwrap()
            .memory_bytes();
        manager.record_owner("shared", 1);
        manager.record_owner("shared", 2);
        assert!(manager.session_bytes(2, &catalog) < bytes);
        // Session 1 closes: the survivor is charged the whole table, not a
        // stale half.
        manager.release_session(1);
        assert_eq!(manager.owners("shared"), vec![2]);
        assert_eq!(manager.session_bytes(2, &catalog), bytes);
        assert_eq!(manager.session_bytes(1, &catalog), 0);
        // The last owner closing clears the set entirely.
        manager.release_session(2);
        assert!(manager.owners("shared").is_empty());
    }

    fn spill_manager(tag: &str) -> (Arc<crate::spill::SpillManager>, std::path::PathBuf) {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos();
        let dir = std::env::temp_dir().join(format!(
            "shark-memstore-{tag}-{}-{nanos}",
            std::process::id()
        ));
        (
            Arc::new(crate::spill::SpillManager::create(&dir, u64::MAX).unwrap()),
            dir,
        )
    }

    #[test]
    fn eviction_with_spill_tier_demotes_instead_of_dropping() {
        let catalog = catalog_with_tables(&["a"]);
        load_all(&catalog);
        let rdd_cache = CacheManager::new();
        let (spill, dir) = spill_manager("demote");
        let manager = MemstoreManager::new(1).with_spill(spill.clone());
        let events = manager.enforce(&catalog, &rdd_cache);
        assert_eq!(events.len(), 1);
        match &events[0] {
            EvictionEvent::Demoted {
                name,
                partitions,
                bytes,
                spill_bytes,
            } => {
                assert_eq!(name, "a");
                assert_eq!(partitions, &vec![0, 1]);
                assert!(*bytes > 0);
                assert!(*spill_bytes > 0);
            }
            other => panic!("expected a demotion, got {other:?}"),
        }
        // Demoted partitions are on the tier, not awaiting lineage
        // recompute: re-pinning the table is not a recompute signal.
        assert!(spill.is_spilled("a", 0));
        assert!(spill.is_spilled("a", 1));
        assert!(manager.awaiting_recompute().is_empty());
        assert_eq!(manager.pin(&["a".into()]), 0);
        // Memory eviction counters still account the demotions.
        assert_eq!(manager.evicted_partitions(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn demote_table_stages_a_fully_demoted_table() {
        let catalog = catalog_with_tables(&["a", "b"]);
        load_all(&catalog);
        let (spill, dir) = spill_manager("stage");
        let manager = MemstoreManager::new(u64::MAX).with_spill(spill.clone());
        let events = manager.demote_table(&catalog, "a");
        assert_eq!(events.len(), 1);
        let a = catalog.get("a").unwrap();
        assert_eq!(a.cached.as_ref().unwrap().loaded_partitions(), 0);
        assert_eq!(spill.spilled_partition_count(), 2);
        // Only the named table was touched.
        let b = catalog.get("b").unwrap();
        assert_eq!(b.cached.as_ref().unwrap().loaded_partitions(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn forget_clears_spilled_frames_of_the_dropped_table() {
        let catalog = catalog_with_tables(&["a"]);
        load_all(&catalog);
        let (spill, dir) = spill_manager("forget");
        let manager = MemstoreManager::new(u64::MAX).with_spill(spill.clone());
        manager.demote_table(&catalog, "a");
        assert_eq!(spill.spilled_partition_count(), 2);
        manager.forget("a");
        assert_eq!(spill.spilled_partition_count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
