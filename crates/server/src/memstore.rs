//! The memory-budgeted memstore manager.
//!
//! Layered over the two caches a Shark deployment fills up — the SQL
//! catalog's per-table columnar [`MemTable`]s and the RDD-level
//! [`CacheManager`] — this tracks per-table cached bytes against a single
//! server-wide budget and, under pressure, evicts whole cached tables in
//! least-recently-used order (then LRU RDDs). Eviction only drops the
//! in-memory copy: Shark keeps exactly one copy of cached data and relies on
//! lineage, not replication (§2.2), so an evicted table is transparently
//! recomputed from its base generator by the next scan that touches it.
//! Tables pinned by currently executing queries are never victims.
//!
//! [`MemTable`]: shark_sql::MemTable

use parking_lot::Mutex;
use shark_common::hash::FxHashMap;
use shark_rdd::CacheManager;
use shark_sql::Catalog;
use std::collections::HashSet;

/// One eviction performed while enforcing the budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvictionEvent {
    /// A whole cached table was dropped from the memstore.
    Table {
        /// Table name.
        name: String,
        /// Partitions dropped.
        partitions: usize,
        /// Bytes freed.
        bytes: u64,
    },
    /// A cached RDD (e.g. a `.cache()`d intermediate) was dropped.
    Rdd {
        /// RDD id.
        id: usize,
        /// Partitions dropped.
        partitions: usize,
        /// Bytes freed.
        bytes: u64,
    },
}

impl EvictionEvent {
    /// Bytes this eviction freed.
    pub fn bytes(&self) -> u64 {
        match self {
            EvictionEvent::Table { bytes, .. } | EvictionEvent::Rdd { bytes, .. } => *bytes,
        }
    }
}

#[derive(Default)]
struct MemstoreState {
    clock: u64,
    last_touch: FxHashMap<String, u64>,
    pins: FxHashMap<String, usize>,
    /// Tables evicted by policy whose reload has not yet been observed;
    /// touching one of these counts as a lineage recompute.
    awaiting_recompute: HashSet<String>,
    evictions: u64,
    evicted_bytes: u64,
    lineage_recomputes: u64,
}

/// Tracks table usage recency and enforces the server memory budget.
pub struct MemstoreManager {
    budget_bytes: u64,
    state: Mutex<MemstoreState>,
}

impl MemstoreManager {
    /// Create a manager enforcing `budget_bytes` across table memstore +
    /// RDD cache.
    pub fn new(budget_bytes: u64) -> MemstoreManager {
        MemstoreManager {
            budget_bytes: budget_bytes.max(1),
            state: Mutex::new(MemstoreState::default()),
        }
    }

    /// The configured budget in bytes.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Mark `tables` as in use by a starting query: refreshes their LRU
    /// clock and pins them against eviction until [`MemstoreManager::unpin`].
    /// Returns how many of them were previously evicted and are therefore
    /// about to be recomputed from lineage.
    pub fn pin(&self, tables: &[String]) -> usize {
        let mut state = self.state.lock();
        let mut recomputes = 0;
        for name in tables {
            state.clock += 1;
            let tick = state.clock;
            state.last_touch.insert(name.clone(), tick);
            *state.pins.entry(name.clone()).or_insert(0) += 1;
            if state.awaiting_recompute.remove(name) {
                recomputes += 1;
            }
        }
        state.lineage_recomputes += recomputes as u64;
        recomputes
    }

    /// Release the pins taken by [`MemstoreManager::pin`].
    pub fn unpin(&self, tables: &[String]) {
        let mut state = self.state.lock();
        for name in tables {
            if let Some(count) = state.pins.get_mut(name) {
                *count -= 1;
                if *count == 0 {
                    state.pins.remove(name);
                }
            }
        }
    }

    /// Resident bytes currently charged against the budget.
    pub fn resident_bytes(&self, catalog: &Catalog, rdd_cache: &CacheManager) -> u64 {
        catalog.memstore_bytes() + rdd_cache.total_bytes()
    }

    /// Bring residency back under the budget, evicting least-recently-used
    /// unpinned tables first, then least-recently-used cached RDDs. Returns
    /// the evictions performed (empty when already under budget or when
    /// everything over budget is pinned).
    pub fn enforce(&self, catalog: &Catalog, rdd_cache: &CacheManager) -> Vec<EvictionEvent> {
        let mut events = Vec::new();
        loop {
            if self.resident_bytes(catalog, rdd_cache) <= self.budget_bytes {
                break;
            }
            // Hold the state lock across victim selection AND eviction:
            // otherwise a query admitted in between could pin the chosen
            // table and still lose it, and two concurrent enforce() calls
            // could both evict (and double-count) the same victim.
            let mut state = self.state.lock();
            let victim = catalog
                .cached_tables()
                .into_iter()
                .filter(|t| !state.pins.contains_key(&t.name))
                .filter(|t| {
                    t.cached
                        .as_ref()
                        .map(|m| m.memory_bytes() > 0)
                        .unwrap_or(false)
                })
                // Never-touched tables are the coldest of all.
                .min_by_key(|t| state.last_touch.get(&t.name).copied().unwrap_or(0));
            if let Some(table) = victim {
                let mem = table.cached.as_ref().expect("victim tables are cached");
                let (partitions, bytes) = mem.evict_all();
                if partitions == 0 {
                    // A failure-path drop raced us and emptied the table;
                    // nothing freed, nothing to record — try the next victim.
                    continue;
                }
                state.awaiting_recompute.insert(table.name.clone());
                state.evictions += 1;
                state.evicted_bytes += bytes;
                drop(state);
                events.push(EvictionEvent::Table {
                    name: table.name.clone(),
                    partitions,
                    bytes,
                });
                continue;
            }
            // No evictable table left: fall back to the RDD cache.
            if let Some(rdd_id) = rdd_cache.lru_rdd() {
                let stats = rdd_cache.evict_rdd(rdd_id);
                if stats.partitions > 0 {
                    state.evictions += 1;
                    state.evicted_bytes += stats.bytes;
                    drop(state);
                    events.push(EvictionEvent::Rdd {
                        id: rdd_id,
                        partitions: stats.partitions,
                        bytes: stats.bytes,
                    });
                    continue;
                }
            }
            // Everything still resident is pinned; give up rather than spin.
            break;
        }
        events
    }

    /// Forget all bookkeeping for a table (call when it is dropped from the
    /// catalog, so a future table of the same name starts clean).
    pub fn forget(&self, table: &str) {
        let mut state = self.state.lock();
        state.last_touch.remove(table);
        state.pins.remove(table);
        state.awaiting_recompute.remove(table);
    }

    /// Total policy evictions performed so far.
    pub fn evictions(&self) -> u64 {
        self.state.lock().evictions
    }

    /// Total bytes freed by policy evictions.
    pub fn evicted_bytes(&self) -> u64 {
        self.state.lock().evicted_bytes
    }

    /// Tables whose eviction was later followed by a re-access (and thus a
    /// lineage recompute).
    pub fn lineage_recomputes(&self) -> u64 {
        self.state.lock().lineage_recomputes
    }

    /// Tables currently pinned by in-flight queries or open cursors,
    /// sorted by name.
    pub fn pinned_tables(&self) -> Vec<String> {
        let mut names: Vec<String> = self.state.lock().pins.keys().cloned().collect();
        names.sort();
        names
    }

    /// Tables evicted and not yet re-accessed.
    pub fn awaiting_recompute(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .state
            .lock()
            .awaiting_recompute
            .iter()
            .cloned()
            .collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shark_common::{row, DataType, Schema};
    use shark_sql::TableMeta;
    use std::sync::Arc;

    fn catalog_with_tables(names: &[&str]) -> Arc<Catalog> {
        let catalog = Arc::new(Catalog::new());
        for name in names {
            let schema = Schema::from_pairs(&[("x", DataType::Int), ("s", DataType::Str)]);
            catalog.register(
                TableMeta::new(name, schema, 2, |p| {
                    (0..200)
                        .map(|i| row![(p * 1000 + i) as i64, format!("value-{p}-{i}")])
                        .collect()
                })
                .with_cache(2),
            );
        }
        catalog
    }

    fn load_all(catalog: &Catalog) {
        for table in catalog.cached_tables() {
            let mem = table.cached.as_ref().unwrap();
            for p in 0..table.num_partitions {
                let rows = (table.base)(p);
                mem.put(
                    p,
                    Arc::new(shark_columnar::ColumnarPartition::from_rows(
                        &table.schema,
                        &rows,
                    )),
                );
            }
        }
    }

    #[test]
    fn evicts_lru_first_and_spares_pinned_tables() {
        let catalog = catalog_with_tables(&["a", "b", "c"]);
        load_all(&catalog);
        let rdd_cache = CacheManager::new();
        let per_table = catalog.memstore_bytes() / 3;
        // Budget fits two tables: one eviction needed.
        let manager = MemstoreManager::new(per_table * 2 + per_table / 2);
        // Touch order: a (oldest), b, c — and pin a, so b is the victim.
        manager.pin(&["a".into()]);
        manager.pin(&["b".into()]);
        manager.pin(&["c".into()]);
        manager.unpin(&["b".into()]);
        manager.unpin(&["c".into()]);
        let events = manager.enforce(&catalog, &rdd_cache);
        assert_eq!(events.len(), 1);
        match &events[0] {
            EvictionEvent::Table {
                name,
                partitions,
                bytes,
            } => {
                assert_eq!(name, "b");
                assert_eq!(*partitions, 2);
                assert!(*bytes > 0);
            }
            other => panic!("expected table eviction, got {other:?}"),
        }
        assert_eq!(manager.evictions(), 1);
        assert_eq!(manager.awaiting_recompute(), vec!["b".to_string()]);
        // Re-accessing b counts as a lineage recompute.
        assert_eq!(manager.pin(&["b".into()]), 1);
        assert_eq!(manager.lineage_recomputes(), 1);
        assert!(manager.awaiting_recompute().is_empty());
    }

    #[test]
    fn enforce_is_a_noop_under_budget() {
        let catalog = catalog_with_tables(&["a"]);
        load_all(&catalog);
        let rdd_cache = CacheManager::new();
        let manager = MemstoreManager::new(u64::MAX);
        assert!(manager.enforce(&catalog, &rdd_cache).is_empty());
        assert_eq!(manager.evictions(), 0);
    }

    #[test]
    fn falls_back_to_rdd_cache_when_tables_are_pinned() {
        let catalog = catalog_with_tables(&["a"]);
        load_all(&catalog);
        let rdd_cache = CacheManager::new();
        rdd_cache.put(7, 0, Arc::new(vec![0u8; 16]), 0, 1 << 20);
        let manager = MemstoreManager::new(catalog.memstore_bytes());
        manager.pin(&["a".into()]);
        let events = manager.enforce(&catalog, &rdd_cache);
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], EvictionEvent::Rdd { id: 7, .. }));
        // Table a survived; nothing else to evict even though still over.
        assert!(catalog.memstore_bytes() > 0);
        assert!(manager.enforce(&catalog, &rdd_cache).is_empty());
    }
}
