//! Per-query and per-session metrics, aggregated into a server-level report.
//!
//! Besides the in-process query log ([`MetricsRegistry`]), every recorded
//! query is also published to the process-wide [`shark_obs::metrics()`]
//! registry as Prometheus-style counters and histograms
//! (`shark_queries_total`, `shark_query_exec_seconds`,
//! `shark_admission_wait_seconds`, …), so one scrape endpoint covers the
//! serving layer, the scan layer and the simulated cluster.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::sync::OnceLock;
use std::time::Duration;

use shark_obs::{Counter, Histogram, JsonWriter, LATENCY_BUCKETS};

/// Cached handles into the unified [`shark_obs::metrics()`] registry, so
/// recording a query costs a handful of atomic ops instead of a registry
/// lookup per metric.
struct ObsMetrics {
    queries: Arc<Counter>,
    failed: Arc<Counter>,
    streamed: Arc<Counter>,
    rejected: Arc<Counter>,
    rows_delivered: Arc<Counter>,
    prefetch_hits: Arc<Counter>,
    cache_hit_bytes: Arc<Counter>,
    recomputed_tables: Arc<Counter>,
    evictions: Arc<Counter>,
    quota_evicted: Arc<Counter>,
    plan_cache_hits: Arc<Counter>,
    exec_seconds: Arc<Histogram>,
    admission_wait_seconds: Arc<Histogram>,
    ttfr_seconds: Arc<Histogram>,
}

fn obs_metrics() -> &'static ObsMetrics {
    static OBS: OnceLock<ObsMetrics> = OnceLock::new();
    OBS.get_or_init(|| {
        let reg = shark_obs::metrics();
        ObsMetrics {
            queries: reg.counter("shark_queries_total", "Queries run (including failed)"),
            failed: reg.counter(
                "shark_queries_failed_total",
                "Queries that returned an error",
            ),
            streamed: reg.counter(
                "shark_streamed_queries_total",
                "Queries served through a streaming cursor",
            ),
            rejected: reg.counter(
                "shark_rejected_total",
                "Queries rejected by admission control",
            ),
            rows_delivered: reg.counter(
                "shark_rows_delivered_total",
                "Result rows delivered to clients",
            ),
            prefetch_hits: reg.counter(
                "shark_prefetch_hits_total",
                "Stream batch deliveries served by an already-finished prefetch worker",
            ),
            cache_hit_bytes: reg.counter(
                "shark_cache_hit_bytes_total",
                "Resident columnar bytes of referenced cached tables at admission",
            ),
            recomputed_tables: reg.counter(
                "shark_lineage_recomputed_tables_total",
                "Referenced tables recomputed from lineage after eviction",
            ),
            evictions: reg.counter(
                "shark_evictions_triggered_total",
                "Eviction events triggered by query-completion budget enforcement",
            ),
            quota_evicted: reg.counter(
                "shark_quota_evicted_partitions_total",
                "Partitions evicted because a session exceeded its memory quota",
            ),
            plan_cache_hits: reg.counter(
                "shark_plan_cache_hits_total",
                "Queries answered with a cached plan (parse and plan skipped)",
            ),
            exec_seconds: reg.histogram(
                "shark_query_exec_seconds",
                "Wall-clock query execution time after admission",
                LATENCY_BUCKETS,
            ),
            admission_wait_seconds: reg.histogram(
                "shark_admission_wait_seconds",
                "Time queries spent waiting in the admission queue",
                LATENCY_BUCKETS,
            ),
            ttfr_seconds: reg.histogram(
                "shark_time_to_first_row_seconds",
                "Time from admission until the first result row was delivered",
                LATENCY_BUCKETS,
            ),
        }
    })
}

/// What one query cost, observed by the serving layer.
#[derive(Debug, Clone)]
pub struct QueryMetrics {
    /// Session that issued the query.
    pub session_id: u64,
    /// Server-wide query sequence number.
    pub query_id: u64,
    /// The statement text.
    pub statement: String,
    /// Time spent waiting in the admission queue.
    pub queue_wait: Duration,
    /// Wall-clock execution time (after admission).
    pub exec_time: Duration,
    /// Simulated cluster seconds the query charged.
    pub sim_seconds: f64,
    /// Wall-clock time from admission until the first result row was
    /// delivered to the client. For batch (non-streamed) queries this is
    /// the full execution time — the whole result arrives at once.
    pub time_to_first_row: Duration,
    /// Rows delivered to the client.
    pub rows_streamed: u64,
    /// Result-stage partitions actually executed. A streamed LIMIT query
    /// stops launching partitions early, so this can be smaller than
    /// `partitions_total`.
    pub partitions_streamed: usize,
    /// Partitions the full result stage would have run.
    pub partitions_total: usize,
    /// Whether the query was served through a streaming cursor.
    pub streamed: bool,
    /// Prefetch depth granted to the cursor out of the server's aggregate
    /// prefetch budget (0 for serial streams and batch queries).
    pub prefetch_depth: usize,
    /// Batch deliveries that found their partition already computed by a
    /// prefetch worker.
    pub prefetch_hits: u64,
    /// Resident columnar bytes of the referenced cached tables at admission
    /// time — the bytes the scans could serve straight from the memstore.
    pub cache_hit_bytes: u64,
    /// Referenced tables that had been evicted and were recomputed from
    /// lineage by this query.
    pub recomputed_tables: usize,
    /// Evictions this query's budget enforcement triggered on completion.
    pub evictions_triggered: usize,
    /// Partitions evicted on completion because this query pushed its
    /// session over its memory quota (own-session LRU partitions go first).
    pub quota_evictions: usize,
    /// Whether this query's plan came out of the shared plan cache
    /// (skipping parse and plan entirely).
    pub plan_cache_hit: bool,
    /// Whether the query failed (parse/plan/execution error).
    pub failed: bool,
}

/// Aggregated view of one session's traffic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SessionStats {
    /// Session id.
    pub session_id: u64,
    /// Queries that ran (including failed ones).
    pub queries: u64,
    /// Queries rejected by admission control.
    pub rejected: u64,
    /// Total time this session's queries spent queued.
    pub total_queue_wait: Duration,
    /// Total wall-clock execution time.
    pub total_exec_time: Duration,
    /// Total cache-hit bytes across its queries.
    pub cache_hit_bytes: u64,
}

/// Server-level aggregate over every session.
#[derive(Debug, Clone, Default)]
pub struct ServerReport {
    /// Queries that ran to completion or failure (not rejected ones).
    pub total_queries: u64,
    /// Queries turned away because the admission queue was full.
    pub rejected_queries: u64,
    /// Queries that returned an error.
    pub failed_queries: u64,
    /// Highest number of queries executing simultaneously.
    pub peak_concurrent_queries: usize,
    /// Deepest admission queue observed.
    pub peak_queued_queries: usize,
    /// Sum of queue waits across all queries.
    pub total_queue_wait: Duration,
    /// Largest single queue wait.
    pub max_queue_wait: Duration,
    /// Sum of wall-clock execution times.
    pub total_exec_time: Duration,
    /// Sum of time-to-first-row across all queries (batch queries
    /// contribute their full execution time).
    pub total_time_to_first_row: Duration,
    /// Sum of time-to-first-row across streamed queries only — the number
    /// the streaming headline metric is computed from.
    pub streamed_time_to_first_row: Duration,
    /// Queries served through a streaming cursor.
    pub streamed_queries: u64,
    /// Rows delivered through streaming cursors.
    pub streamed_rows: u64,
    /// Result partitions executed by streamed queries (early-terminated
    /// LIMIT streams make this smaller than the tables' partition counts).
    pub streamed_partitions: u64,
    /// Batch deliveries across all streamed queries that were served by an
    /// already-finished prefetch worker.
    pub prefetch_hits: u64,
    /// Total cache-hit bytes served.
    pub cache_hit_bytes: u64,
    /// Policy eviction events performed by the memstore manager (one per
    /// victim table or RDD per enforcement pass).
    pub evictions: u64,
    /// Individual partitions those evictions dropped.
    pub evicted_partitions: u64,
    /// Eviction events that left their table partially resident — the
    /// partition-granular evictions a whole-table policy could not do.
    pub partial_evictions: u64,
    /// Bytes freed by those evictions.
    pub evicted_bytes: u64,
    /// Evicted tables later recomputed from lineage on re-access.
    pub lineage_recomputes: u64,
    /// Times a session was found over its memory quota.
    pub quota_hits: u64,
    /// Partitions evicted because their owning session exceeded its quota.
    pub quota_evicted_partitions: u64,
    /// Table loads rejected at admission time because their recorded full
    /// footprint provably exceeded the per-session quota (admitting them
    /// could only thrash).
    pub quota_infeasible_rejections: u64,
    /// Whether the shared prepared-statement / plan cache is enabled.
    pub plan_cache_enabled: bool,
    /// Executions that reused a cached plan (skipped parse and plan).
    pub plan_cache_hits: u64,
    /// Plan-tier lookups that had to compile (cold statements and epoch
    /// invalidations).
    pub plan_cache_misses: u64,
    /// Cache misses caused by a DDL epoch bump invalidating a cached plan.
    pub plan_cache_stale_plans: u64,
    /// Statements currently held by the plan cache.
    pub plan_cache_entries: u64,
    /// The plan cache's configured capacity (0 = disabled).
    pub plan_cache_capacity: u64,
    /// TCP connections ever accepted by the net frontend (0 when the
    /// server is not serving TCP).
    pub connections_opened: u64,
    /// TCP connections fully torn down (client close, error, or reap).
    pub connections_closed: u64,
    /// TCP connections currently open.
    pub connections_active: u64,
    /// Connections forcibly closed by the idle-deadline reaper.
    pub connections_reaped: u64,
    /// Payload + frame-header bytes written to client sockets.
    pub wire_bytes_sent: u64,
    /// Payload + frame-header bytes read from client sockets.
    pub wire_bytes_received: u64,
    /// Protocol frames written to client sockets.
    pub net_frames_sent: u64,
    /// Protocol frames read from client sockets.
    pub net_frames_received: u64,
    /// Malformed frames observed (bad magic, oversized length, checksum
    /// mismatch, garbage payload) — each closes its connection.
    pub net_protocol_errors: u64,
    /// Hello handshakes rejected (wrong magic/version/auth token).
    pub net_auth_failures: u64,
    /// Query + Execute frames processed by connection handlers.
    pub net_queries: u64,
    /// Prepare frames that registered a prepared statement.
    pub net_prepared_statements: u64,
    /// Cancel frames honored mid-query.
    pub net_cancels: u64,
    /// Partitions rebuilt from the base generator by scans (lineage
    /// recovery after eviction or node failure), summed over cached tables.
    pub partition_rebuilds: u64,
    /// Demoted partitions faulted back into memory from the spill tier by
    /// scans, summed over cached tables — recoveries that cost I/O instead
    /// of recompute.
    pub partition_promotions: u64,
    /// Partitions currently demoted to the spill tier.
    pub spilled_partitions: u64,
    /// Bytes of spill frames currently on disk.
    pub spill_disk_bytes: u64,
    /// The configured spill-tier disk budget (`u64::MAX` = unlimited;
    /// 0 when no spill tier is configured).
    pub spill_budget_bytes: u64,
    /// Partitions ever demoted (written) to the spill tier.
    pub partitions_demoted: u64,
    /// Partitions ever promoted (read back) from the spill tier.
    pub partitions_promoted: u64,
    /// Spill-frame bytes ever written.
    pub spill_bytes_written: u64,
    /// Spill-frame bytes ever read back.
    pub spill_bytes_read: u64,
    /// Spill files found corrupt or unreadable on promotion and discarded
    /// (the partition fell back to lineage recompute).
    pub spill_poisoned_files: u64,
    /// Spill frames displaced from disk by the spill tier's own budget.
    pub spill_displaced_partitions: u64,
    /// The catalog's current epoch (bumped by every DDL).
    pub catalog_epoch: u64,
    /// Catalog snapshots pinned at report time (in-flight queries, open
    /// streaming cursors).
    pub live_snapshots: usize,
    /// Resident bytes of `DROP TABLE`d versions still pinned by open
    /// snapshots, awaiting deferred reclamation.
    pub deferred_drop_bytes: u64,
    /// Dropped table versions reclaimed after their last pinning snapshot
    /// was released.
    pub deferred_drops_reclaimed: u64,
    /// Bytes those deferred reclamations freed.
    pub deferred_reclaimed_bytes: u64,
    /// Whether catalog durability (WAL + snapshots) is enabled.
    pub wal_enabled: bool,
    /// Records appended to the catalog WAL by this server (resets when a
    /// checkpoint truncates the log).
    pub wal_records: u64,
    /// Catalog checkpoints written (snapshot + manifest + WAL truncation).
    pub wal_snapshots_written: u64,
    /// WAL batch appends that failed (durability is best-effort: the query
    /// itself still succeeded).
    pub wal_append_failures: u64,
    /// Whether this server was started via `SharkServer::restore`.
    pub restored: bool,
    /// WAL records replayed during restore.
    pub recovery_wal_records_replayed: u64,
    /// Whether restore truncated a torn or corrupt WAL tail.
    pub recovery_torn_wal_tail: bool,
    /// Tables re-registered from snapshot + WAL during restore.
    pub recovery_tables_restored: u64,
    /// Restored tables left with a placeholder row generator (no resolver
    /// match); they panic on first lineage recompute.
    pub recovery_placeholder_tables: u64,
    /// Spill frames re-adopted into the tier during restore.
    pub recovery_frames_adopted: u64,
    /// Manifest/WAL frame expectations rejected during restore (missing,
    /// corrupt or version-mismatched files).
    pub recovery_frames_rejected: u64,
    /// Unreachable spill files deleted by the post-adoption orphan sweep.
    pub recovery_orphans_swept: u64,
    /// Resident table-memstore bytes at report time.
    pub memstore_bytes: u64,
    /// Resident RDD-cache bytes at report time.
    pub rdd_cache_bytes: u64,
    /// The configured memory budget.
    pub memory_budget_bytes: u64,
    /// The configured per-session memory quota (`u64::MAX` = unlimited).
    pub session_quota_bytes: u64,
    /// Per-session aggregates, ordered by session id.
    pub sessions: Vec<SessionStats>,
}

impl ServerReport {
    /// Multi-line human-readable rendering (used by the example binary).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "queries: {} run ({} failed), {} rejected; peak concurrency {}, peak queue {}\n",
            self.total_queries,
            self.failed_queries,
            self.rejected_queries,
            self.peak_concurrent_queries,
            self.peak_queued_queries,
        ));
        out.push_str(&format!(
            "queue wait: total {:.1} ms, max {:.1} ms; exec: total {:.1} ms\n",
            self.total_queue_wait.as_secs_f64() * 1e3,
            self.max_queue_wait.as_secs_f64() * 1e3,
            self.total_exec_time.as_secs_f64() * 1e3,
        ));
        out.push_str(&format!(
            "memstore: {} of {} budget bytes resident (+{} rdd-cache); {} evictions dropped {} partitions ({} partial) freeing {} bytes; {} lineage recomputes, {} partition rebuilds\n",
            self.memstore_bytes,
            self.memory_budget_bytes,
            self.rdd_cache_bytes,
            self.evictions,
            self.evicted_partitions,
            self.partial_evictions,
            self.evicted_bytes,
            self.lineage_recomputes,
            self.partition_rebuilds,
        ));
        if self.spill_budget_bytes > 0 {
            out.push_str(&format!(
                "spill tier: {} partitions ({} bytes) on disk of {} budget; lifetime {} demoted / {} promoted ({} promotions served to scans), {} displaced, {} poisoned\n",
                self.spilled_partitions,
                self.spill_disk_bytes,
                self.spill_budget_bytes,
                self.partitions_demoted,
                self.partitions_promoted,
                self.partition_promotions,
                self.spill_displaced_partitions,
                self.spill_poisoned_files,
            ));
        }
        if self.wal_enabled {
            out.push_str(&format!(
                "durability: {} WAL records since last checkpoint, {} checkpoints written, {} append failures\n",
                self.wal_records, self.wal_snapshots_written, self.wal_append_failures,
            ));
        }
        if self.restored {
            out.push_str(&format!(
                "recovery: {} tables restored ({} placeholder generators), {} WAL records replayed{}; frames: {} adopted, {} rejected, {} orphans swept\n",
                self.recovery_tables_restored,
                self.recovery_placeholder_tables,
                self.recovery_wal_records_replayed,
                if self.recovery_torn_wal_tail {
                    " (torn tail truncated)"
                } else {
                    ""
                },
                self.recovery_frames_adopted,
                self.recovery_frames_rejected,
                self.recovery_orphans_swept,
            ));
        }
        out.push_str(&format!(
            "catalog: epoch {}, {} live snapshots; deferred drops: {} bytes awaiting release, {} versions reclaimed ({} bytes)\n",
            self.catalog_epoch,
            self.live_snapshots,
            self.deferred_drop_bytes,
            self.deferred_drops_reclaimed,
            self.deferred_reclaimed_bytes,
        ));
        if self.session_quota_bytes != u64::MAX {
            out.push_str(&format!(
                "session quota: {} bytes per session; {} quota hits evicted {} partitions; {} infeasible loads rejected\n",
                self.session_quota_bytes,
                self.quota_hits,
                self.quota_evicted_partitions,
                self.quota_infeasible_rejections,
            ));
        }
        if self.plan_cache_enabled {
            out.push_str(&format!(
                "plan cache: {} of {} statements cached; {} hits, {} misses ({} stale after DDL)\n",
                self.plan_cache_entries,
                self.plan_cache_capacity,
                self.plan_cache_hits,
                self.plan_cache_misses,
                self.plan_cache_stale_plans,
            ));
        }
        if self.connections_opened > 0 || self.net_protocol_errors > 0 {
            out.push_str(&format!(
                "net: {} connections opened ({} active, {} reaped); {} frames / {} bytes sent, {} frames / {} bytes received; {} queries, {} prepares, {} cancels; {} protocol errors, {} auth failures\n",
                self.connections_opened,
                self.connections_active,
                self.connections_reaped,
                self.net_frames_sent,
                self.wire_bytes_sent,
                self.net_frames_received,
                self.wire_bytes_received,
                self.net_queries,
                self.net_prepared_statements,
                self.net_cancels,
                self.net_protocol_errors,
                self.net_auth_failures,
            ));
        }
        let avg_ttfr_ms = if self.streamed_queries > 0 {
            self.streamed_time_to_first_row.as_secs_f64() * 1e3 / self.streamed_queries as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "streaming: {} streamed queries delivered {} rows over {} partitions ({} prefetch hits); avg time-to-first-row {:.2} ms\n",
            self.streamed_queries,
            self.streamed_rows,
            self.streamed_partitions,
            self.prefetch_hits,
            avg_ttfr_ms,
        ));
        out.push_str(&format!(
            "cache-hit bytes served: {}\n",
            self.cache_hit_bytes
        ));
        for s in &self.sessions {
            out.push_str(&format!(
                "  session {:>3}: {} queries ({} rejected), queued {:.1} ms, exec {:.1} ms, {} cache-hit bytes\n",
                s.session_id,
                s.queries,
                s.rejected,
                s.total_queue_wait.as_secs_f64() * 1e3,
                s.total_exec_time.as_secs_f64() * 1e3,
                s.cache_hit_bytes,
            ));
        }
        out
    }

    /// Machine-readable JSON rendering of the full report (durations in
    /// seconds), suitable for CI smoke-test assertions.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_u64("total_queries", self.total_queries);
        w.field_u64("rejected_queries", self.rejected_queries);
        w.field_u64("failed_queries", self.failed_queries);
        w.field_u64(
            "peak_concurrent_queries",
            self.peak_concurrent_queries as u64,
        );
        w.field_u64("peak_queued_queries", self.peak_queued_queries as u64);
        w.field_f64(
            "total_queue_wait_seconds",
            self.total_queue_wait.as_secs_f64(),
        );
        w.field_f64("max_queue_wait_seconds", self.max_queue_wait.as_secs_f64());
        w.field_f64("total_exec_seconds", self.total_exec_time.as_secs_f64());
        w.field_f64(
            "total_time_to_first_row_seconds",
            self.total_time_to_first_row.as_secs_f64(),
        );
        w.field_f64(
            "streamed_time_to_first_row_seconds",
            self.streamed_time_to_first_row.as_secs_f64(),
        );
        w.field_u64("streamed_queries", self.streamed_queries);
        w.field_u64("streamed_rows", self.streamed_rows);
        w.field_u64("streamed_partitions", self.streamed_partitions);
        w.field_u64("prefetch_hits", self.prefetch_hits);
        w.field_u64("cache_hit_bytes", self.cache_hit_bytes);
        w.field_u64("evictions", self.evictions);
        w.field_u64("evicted_partitions", self.evicted_partitions);
        w.field_u64("partial_evictions", self.partial_evictions);
        w.field_u64("evicted_bytes", self.evicted_bytes);
        w.field_u64("lineage_recomputes", self.lineage_recomputes);
        w.field_u64("quota_hits", self.quota_hits);
        w.field_u64("quota_evicted_partitions", self.quota_evicted_partitions);
        w.field_u64(
            "quota_infeasible_rejections",
            self.quota_infeasible_rejections,
        );
        w.field_bool("plan_cache_enabled", self.plan_cache_enabled);
        w.field_u64("plan_cache_hits", self.plan_cache_hits);
        w.field_u64("plan_cache_misses", self.plan_cache_misses);
        w.field_u64("plan_cache_stale_plans", self.plan_cache_stale_plans);
        w.field_u64("plan_cache_entries", self.plan_cache_entries);
        w.field_u64("plan_cache_capacity", self.plan_cache_capacity);
        w.field_u64("connections_opened", self.connections_opened);
        w.field_u64("connections_closed", self.connections_closed);
        w.field_u64("connections_active", self.connections_active);
        w.field_u64("connections_reaped", self.connections_reaped);
        w.field_u64("wire_bytes_sent", self.wire_bytes_sent);
        w.field_u64("wire_bytes_received", self.wire_bytes_received);
        w.field_u64("net_frames_sent", self.net_frames_sent);
        w.field_u64("net_frames_received", self.net_frames_received);
        w.field_u64("net_protocol_errors", self.net_protocol_errors);
        w.field_u64("net_auth_failures", self.net_auth_failures);
        w.field_u64("net_queries", self.net_queries);
        w.field_u64("net_prepared_statements", self.net_prepared_statements);
        w.field_u64("net_cancels", self.net_cancels);
        w.field_u64("partition_rebuilds", self.partition_rebuilds);
        w.field_u64("partition_promotions", self.partition_promotions);
        w.field_u64("spilled_partitions", self.spilled_partitions);
        w.field_u64("spill_disk_bytes", self.spill_disk_bytes);
        w.field_u64("spill_budget_bytes", self.spill_budget_bytes);
        w.field_u64("partitions_demoted", self.partitions_demoted);
        w.field_u64("partitions_promoted", self.partitions_promoted);
        w.field_u64("spill_bytes_written", self.spill_bytes_written);
        w.field_u64("spill_bytes_read", self.spill_bytes_read);
        w.field_u64("spill_poisoned_files", self.spill_poisoned_files);
        w.field_u64(
            "spill_displaced_partitions",
            self.spill_displaced_partitions,
        );
        w.field_bool("wal_enabled", self.wal_enabled);
        w.field_u64("wal_records", self.wal_records);
        w.field_u64("wal_snapshots_written", self.wal_snapshots_written);
        w.field_u64("wal_append_failures", self.wal_append_failures);
        w.field_bool("restored", self.restored);
        w.field_u64(
            "recovery_wal_records_replayed",
            self.recovery_wal_records_replayed,
        );
        w.field_bool("recovery_torn_wal_tail", self.recovery_torn_wal_tail);
        w.field_u64("recovery_tables_restored", self.recovery_tables_restored);
        w.field_u64(
            "recovery_placeholder_tables",
            self.recovery_placeholder_tables,
        );
        w.field_u64("recovery_frames_adopted", self.recovery_frames_adopted);
        w.field_u64("recovery_frames_rejected", self.recovery_frames_rejected);
        w.field_u64("recovery_orphans_swept", self.recovery_orphans_swept);
        w.field_u64("catalog_epoch", self.catalog_epoch);
        w.field_u64("live_snapshots", self.live_snapshots as u64);
        w.field_u64("deferred_drop_bytes", self.deferred_drop_bytes);
        w.field_u64("deferred_drops_reclaimed", self.deferred_drops_reclaimed);
        w.field_u64("deferred_reclaimed_bytes", self.deferred_reclaimed_bytes);
        w.field_u64("memstore_bytes", self.memstore_bytes);
        w.field_u64("rdd_cache_bytes", self.rdd_cache_bytes);
        w.field_u64("memory_budget_bytes", self.memory_budget_bytes);
        w.field_u64("session_quota_bytes", self.session_quota_bytes);
        w.begin_array_field("sessions");
        for s in &self.sessions {
            w.begin_object();
            w.field_u64("session_id", s.session_id);
            w.field_u64("queries", s.queries);
            w.field_u64("rejected", s.rejected);
            w.field_f64("total_queue_wait_seconds", s.total_queue_wait.as_secs_f64());
            w.field_f64("total_exec_seconds", s.total_exec_time.as_secs_f64());
            w.field_u64("cache_hit_bytes", s.cache_hit_bytes);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }
}

/// Collects [`QueryMetrics`] and per-session rejection counts.
#[derive(Default)]
pub struct MetricsRegistry {
    queries: Mutex<Vec<QueryMetrics>>,
    rejected: Mutex<BTreeMap<u64, u64>>,
}

impl MetricsRegistry {
    /// Record one completed (or failed) query — in the query log and in the
    /// unified [`shark_obs::metrics()`] registry.
    pub fn record(&self, metrics: QueryMetrics) {
        let obs = obs_metrics();
        obs.queries.inc();
        if metrics.failed {
            obs.failed.inc();
        }
        if metrics.streamed {
            obs.streamed.inc();
        }
        obs.rows_delivered.add(metrics.rows_streamed);
        obs.prefetch_hits.add(metrics.prefetch_hits);
        obs.cache_hit_bytes.add(metrics.cache_hit_bytes);
        obs.recomputed_tables.add(metrics.recomputed_tables as u64);
        obs.evictions.add(metrics.evictions_triggered as u64);
        obs.quota_evicted.add(metrics.quota_evictions as u64);
        if metrics.plan_cache_hit {
            obs.plan_cache_hits.inc();
        }
        obs.exec_seconds.observe(metrics.exec_time.as_secs_f64());
        obs.admission_wait_seconds
            .observe(metrics.queue_wait.as_secs_f64());
        obs.ttfr_seconds
            .observe(metrics.time_to_first_row.as_secs_f64());
        self.queries.lock().push(metrics);
    }

    /// Record an admission rejection for a session.
    pub fn record_rejection(&self, session_id: u64) {
        obs_metrics().rejected.inc();
        *self.rejected.lock().entry(session_id).or_insert(0) += 1;
    }

    /// Snapshot of every recorded query, in completion order.
    pub fn query_log(&self) -> Vec<QueryMetrics> {
        self.queries.lock().clone()
    }

    /// Aggregate everything recorded so far. Cache/eviction/concurrency
    /// fields are left at zero for the caller ([`crate::SharkServer`]) to
    /// fill in from the memstore manager and admission controller.
    pub fn aggregate(&self) -> ServerReport {
        let queries = self.queries.lock();
        let rejected = self.rejected.lock();
        let mut report = ServerReport::default();
        let mut sessions: BTreeMap<u64, SessionStats> = BTreeMap::new();
        for (&session_id, &count) in rejected.iter() {
            let entry = sessions.entry(session_id).or_default();
            entry.session_id = session_id;
            entry.rejected = count;
            report.rejected_queries += count;
        }
        for q in queries.iter() {
            report.total_queries += 1;
            if q.failed {
                report.failed_queries += 1;
            }
            report.total_queue_wait += q.queue_wait;
            report.max_queue_wait = report.max_queue_wait.max(q.queue_wait);
            report.total_exec_time += q.exec_time;
            report.total_time_to_first_row += q.time_to_first_row;
            if q.streamed {
                report.streamed_queries += 1;
                report.streamed_rows += q.rows_streamed;
                report.streamed_partitions += q.partitions_streamed as u64;
                report.streamed_time_to_first_row += q.time_to_first_row;
                report.prefetch_hits += q.prefetch_hits;
            }
            report.cache_hit_bytes += q.cache_hit_bytes;
            let entry = sessions.entry(q.session_id).or_default();
            entry.session_id = q.session_id;
            entry.queries += 1;
            entry.total_queue_wait += q.queue_wait;
            entry.total_exec_time += q.exec_time;
            entry.cache_hit_bytes += q.cache_hit_bytes;
        }
        report.sessions = sessions.into_values().collect();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(session: u64, wait_ms: u64, hit: u64, failed: bool) -> QueryMetrics {
        QueryMetrics {
            session_id: session,
            query_id: 0,
            statement: "SELECT 1".into(),
            queue_wait: Duration::from_millis(wait_ms),
            exec_time: Duration::from_millis(5),
            sim_seconds: 0.1,
            time_to_first_row: Duration::from_millis(2),
            rows_streamed: 4,
            partitions_streamed: 2,
            partitions_total: 4,
            streamed: true,
            prefetch_depth: 2,
            prefetch_hits: 1,
            cache_hit_bytes: hit,
            recomputed_tables: 0,
            evictions_triggered: 0,
            quota_evictions: 0,
            plan_cache_hit: false,
            failed,
        }
    }

    #[test]
    fn aggregates_by_session_and_totals() {
        let registry = MetricsRegistry::default();
        registry.record(q(1, 10, 100, false));
        registry.record(q(1, 30, 50, true));
        registry.record(q(2, 0, 200, false));
        registry.record_rejection(2);
        registry.record_rejection(3);
        let report = registry.aggregate();
        assert_eq!(report.total_queries, 3);
        assert_eq!(report.failed_queries, 1);
        assert_eq!(report.rejected_queries, 2);
        assert_eq!(report.max_queue_wait, Duration::from_millis(30));
        assert_eq!(report.total_queue_wait, Duration::from_millis(40));
        assert_eq!(report.cache_hit_bytes, 350);
        assert_eq!(report.streamed_queries, 3);
        assert_eq!(report.streamed_rows, 12);
        assert_eq!(report.streamed_partitions, 6);
        assert_eq!(report.prefetch_hits, 3);
        assert_eq!(report.total_time_to_first_row, Duration::from_millis(6));
        assert_eq!(report.streamed_time_to_first_row, Duration::from_millis(6));
        assert_eq!(report.sessions.len(), 3);
        assert_eq!(report.sessions[0].session_id, 1);
        assert_eq!(report.sessions[0].queries, 2);
        assert_eq!(report.sessions[1].cache_hit_bytes, 200);
        assert_eq!(report.sessions[2].rejected, 1);
        assert_eq!(report.sessions[2].queries, 0);
        assert_eq!(registry.query_log().len(), 3);
        assert!(!report.render().is_empty());
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"total_queries\":3"));
        assert!(json.contains("\"streamed_rows\":12"));
        assert!(json.contains("\"sessions\":[{"));
        // Publication into the unified registry happened as a side effect.
        let snap = shark_obs::metrics().snapshot();
        assert!(snap.counter("shark_queries_total") >= 3);
        assert!(snap.counter("shark_rejected_total") >= 2);
        assert!(snap
            .histogram("shark_admission_wait_seconds")
            .is_some_and(|h| h.count >= 3));
    }
}
