//! Spill-to-disk demotion tier for the memory-budgeted memstore.
//!
//! Eviction under memory pressure no longer has to throw a partition's
//! columnar form away: the [`SpillManager`] serializes the compressed
//! partition with the versioned, checksummed frame codec of
//! `shark_columnar::spill` and parks it on disk. A later scan *promotes*
//! the partition back at pure I/O cost instead of re-running its lineage.
//! The tier keeps its own disk budget with LRU displacement: when spilled
//! bytes exceed it, the coldest spill files are deleted and those
//! partitions degrade to lineage recompute — exactly the pre-spill
//! behaviour, never an error.
//!
//! Crash safety: spill files are written under a temporary name and
//! atomically renamed into place, so a crash mid-write can never leave a
//! half-frame under a live name (the frame layout itself is specified in
//! `docs/ondisk-formats.md`). [`SpillManager::create`] sweeps only `.tmp-*`
//! partials from a crashed write; intact `.spill` frames are left on disk
//! so a restore can *re-adopt* them via [`SpillManager::adopt`] — deleting
//! them eagerly at startup raced lazily-installed restores and threw away
//! perfectly servable data. Frames nobody adopts are removed by the
//! explicit [`SpillManager::sweep_orphans`] pass the server runs once
//! adoption (or a durability-free startup) has decided what is reachable.
//! A file that fails its checksum on read — truncated, bit-flipped,
//! tampered — is *poisoned*: it is deleted, counted, and the caller falls
//! back to lineage recompute; a poisoned spill file is never a query error.
//!
//! Every frame is stamped with the owning table's catalog version
//! ([`shark_sql::TableMeta::version`]); a fetch whose expected version
//! disagrees with the frame's poisons it the same way, so a re-adopted
//! frame from a dropped-and-recreated table can never serve stale rows.

use std::fs;
use std::io::Read as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use shark_columnar::{
    decode_partition, encode_partition, read_frame_header, ColumnarPartition, SPILL_HEADER_BYTES,
};
use shark_common::hash::FxHashMap;
use shark_common::{Result, SharkError};
use shark_sql::SpillSource;

use crate::wal::{recovery_metrics, ManifestEntry};

/// Cached unified-registry handles for the spill tier's hot-path metrics.
struct SpillMetrics {
    write_seconds: Arc<shark_obs::Histogram>,
    read_seconds: Arc<shark_obs::Histogram>,
    demoted: Arc<shark_obs::Counter>,
    promoted: Arc<shark_obs::Counter>,
    bytes_written: Arc<shark_obs::Counter>,
    bytes_read: Arc<shark_obs::Counter>,
    poisoned: Arc<shark_obs::Counter>,
    displaced: Arc<shark_obs::Counter>,
}

fn spill_metrics() -> &'static SpillMetrics {
    static METRICS: std::sync::OnceLock<SpillMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = shark_obs::metrics();
        SpillMetrics {
            write_seconds: reg.histogram(
                "shark_spill_write_seconds",
                "Latency of writing one demoted partition's spill frame",
                shark_obs::IO_BUCKETS,
            ),
            read_seconds: reg.histogram(
                "shark_spill_read_seconds",
                "Latency of reading one spill frame back during promotion",
                shark_obs::IO_BUCKETS,
            ),
            demoted: reg.counter(
                "shark_spill_partitions_demoted_total",
                "Partitions demoted from the memstore to the spill tier",
            ),
            promoted: reg.counter(
                "shark_spill_partitions_promoted_total",
                "Partitions promoted from the spill tier back into memory",
            ),
            bytes_written: reg.counter(
                "shark_spill_bytes_written_total",
                "Spill-frame bytes written by demotions",
            ),
            bytes_read: reg.counter(
                "shark_spill_bytes_read_total",
                "Spill-frame bytes read by promotions",
            ),
            poisoned: reg.counter(
                "shark_spill_poisoned_files_total",
                "Spill files dropped because they failed frame validation",
            ),
            displaced: reg.counter(
                "shark_spill_displaced_partitions_total",
                "Spilled partitions deleted by disk-budget LRU displacement",
            ),
        }
    })
}

/// One spilled partition in the in-memory index.
struct SpillEntry {
    /// On-disk frame size.
    bytes: u64,
    /// LRU clock value at demotion (or last touch).
    tick: u64,
    /// The owning table's catalog version the frame was written under.
    version: u64,
    /// The frame's header checksum, recorded for the manifest.
    checksum: u64,
}

/// A spill-tier movement awaiting journaling into the catalog WAL. The
/// server drains these at query boundaries ([`SpillManager::drain_wal_events`])
/// and appends them as `Demoted`/`Promoted` records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpillEvent {
    /// A partition's frame was written to the tier.
    Demoted {
        /// Owning table.
        table: String,
        /// Partition index.
        partition: usize,
        /// The owning table's catalog version.
        table_version: u64,
        /// Frame size on disk.
        bytes: u64,
        /// Frame header checksum.
        checksum: u64,
    },
    /// A partition's frame was moved back into memory.
    Promoted {
        /// Owning table.
        table: String,
        /// Partition index.
        partition: usize,
        /// The owning table's catalog version.
        table_version: u64,
    },
}

/// Bound on the un-drained WAL-event journal, so a server without
/// durability configured (nobody draining) cannot grow it forever.
const WAL_EVENT_CAP: usize = 4096;

struct SpillState {
    /// `(table, partition)` → index entry; the *only* record of what is
    /// demoted — files on disk without an entry are unreachable garbage.
    entries: FxHashMap<(String, usize), SpillEntry>,
    disk_bytes: u64,
    clock: u64,
    /// Promotions performed by scans since the server last drained them
    /// (table, partition, memory bytes restored).
    promotions: Vec<(String, usize, u64)>,
    /// Demotions/promotions not yet journaled into the WAL.
    wal_events: Vec<SpillEvent>,
}

/// Result of spilling one partition.
pub struct StoreOutcome {
    /// Bytes the spill frame occupies on disk.
    pub spill_bytes: u64,
    /// Partitions whose spill files were deleted to respect the disk
    /// budget; they are now "dropped" and must be marked awaiting
    /// recompute by the caller.
    pub displaced: Vec<(String, usize)>,
}

/// The disk tier: an indexed directory of spill frames plus its own
/// LRU-displaced disk budget. Shared behind an `Arc`; also implements
/// [`shark_sql::SpillSource`] so scans can fault partitions back in
/// without the sql crate depending on the server.
pub struct SpillManager {
    dir: PathBuf,
    budget_bytes: u64,
    state: Mutex<SpillState>,
    // Lifetime counters, readable without the state lock.
    spilled_partitions: AtomicU64,
    spilled_bytes: AtomicU64,
    promoted_partitions: AtomicU64,
    promoted_bytes: AtomicU64,
    displaced_partitions: AtomicU64,
    poisoned_files: AtomicU64,
    write_failures: AtomicU64,
}

/// FNV-1a over a table name, to keep spill file names unique even when
/// sanitizing distinct table names to the same safe characters.
fn name_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl SpillManager {
    /// Open (creating if needed) a spill directory and sweep only `.tmp-*`
    /// partials from a crashed mid-write. Intact `.spill` frames from an
    /// earlier incarnation are deliberately left alone: a restore re-adopts
    /// them via [`SpillManager::adopt`], and whatever remains unreachable
    /// afterwards is removed by [`SpillManager::sweep_orphans`]. (An
    /// earlier version deleted every `.spill` file here, which raced
    /// restores that install the manager lazily and destroyed re-adoptable
    /// frames.)
    pub fn create(dir: impl Into<PathBuf>, budget_bytes: u64) -> Result<SpillManager> {
        let dir = dir.into();
        fs::create_dir_all(&dir)
            .map_err(|e| SharkError::Config(format!("spill dir {}: {e}", dir.display())))?;
        if let Ok(listing) = fs::read_dir(&dir) {
            for entry in listing.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if name.contains(".tmp-") {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
        Ok(SpillManager {
            dir,
            budget_bytes,
            state: Mutex::new(SpillState {
                entries: FxHashMap::default(),
                disk_bytes: 0,
                clock: 0,
                promotions: Vec::new(),
                wal_events: Vec::new(),
            }),
            spilled_partitions: AtomicU64::new(0),
            spilled_bytes: AtomicU64::new(0),
            promoted_partitions: AtomicU64::new(0),
            promoted_bytes: AtomicU64::new(0),
            displaced_partitions: AtomicU64::new(0),
            poisoned_files: AtomicU64::new(0),
            write_failures: AtomicU64::new(0),
        })
    }

    /// The directory spill frames live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Canonical file name (no directory) for one partition's spill frame.
    /// WAL replay uses this to reconstruct manifest entries for demotions
    /// that happened after the last snapshot.
    pub fn frame_file_name(&self, table: &str, partition: usize) -> String {
        self.file_path(table, partition)
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default()
    }

    /// Path of the live spill file for one partition.
    fn file_path(&self, table: &str, partition: usize) -> PathBuf {
        let safe: String = table
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        self.dir.join(format!(
            "{safe}-{:016x}_{partition}.spill",
            name_hash(table)
        ))
    }

    /// Serialize one demoted partition to disk: encode, write to a temp
    /// name, fsync-free atomic rename into place, then displace the coldest
    /// spilled partitions if the disk budget is now exceeded. On any I/O
    /// error nothing is indexed and the caller degrades the partition to
    /// plain eviction (lineage recompute).
    pub fn store(
        &self,
        table: &str,
        partition: usize,
        columnar: &ColumnarPartition,
        table_version: u64,
    ) -> Result<StoreOutcome> {
        let started = Instant::now();
        let frame = encode_partition(columnar, table_version);
        let spill_bytes = frame.len() as u64;
        // The codec just stamped the header; read the checksum back for the
        // index entry (and, through it, the manifest and WAL).
        let checksum = read_frame_header(&frame, Some(spill_bytes))
            .map(|h| h.checksum)
            .unwrap_or(0);
        let final_path = self.file_path(table, partition);
        let write = |tmp: &Path| -> std::io::Result<()> {
            let mut f = fs::File::create(tmp)?;
            f.write_all(&frame)?;
            f.flush()?;
            drop(f);
            fs::rename(tmp, &final_path)
        };
        // The nonce only needs to be unique within the directory; derive it
        // from the manager's clock so concurrent demotions cannot collide.
        let nonce = {
            let mut state = self.state.lock();
            state.clock += 1;
            state.clock
        };
        let tmp = self.dir.join(format!(
            "{}.tmp-{nonce:x}",
            final_path.file_name().unwrap_or_default().to_string_lossy()
        ));
        if let Err(e) = write(&tmp) {
            let _ = fs::remove_file(&tmp);
            self.write_failures.fetch_add(1, Ordering::Relaxed);
            return Err(SharkError::Execution(format!(
                "spill write {}: {e}",
                final_path.display()
            )));
        }
        spill_metrics()
            .write_seconds
            .observe(started.elapsed().as_secs_f64());
        spill_metrics().demoted.inc();
        spill_metrics().bytes_written.add(spill_bytes);
        self.spilled_partitions.fetch_add(1, Ordering::Relaxed);
        self.spilled_bytes.fetch_add(spill_bytes, Ordering::Relaxed);
        if shark_obs::active() {
            shark_obs::event(
                "spill-write",
                &[
                    ("partition", &format!("{table}[{partition}]")),
                    ("bytes", &spill_bytes.to_string()),
                ],
            );
        }

        let mut state = self.state.lock();
        state.clock += 1;
        let tick = state.clock;
        // Replacing an existing frame (same partition demoted twice without
        // an intervening promotion) swaps the old size out of the total.
        if let Some(old) = state.entries.insert(
            (table.to_string(), partition),
            SpillEntry {
                bytes: spill_bytes,
                tick,
                version: table_version,
                checksum,
            },
        ) {
            state.disk_bytes -= old.bytes;
        }
        state.disk_bytes += spill_bytes;
        Self::journal(
            &mut state,
            SpillEvent::Demoted {
                table: table.to_string(),
                partition,
                table_version,
                bytes: spill_bytes,
                checksum,
            },
        );

        // Disk-budget LRU displacement, coldest first. The entry just
        // written is displaced last — only when it alone exceeds the
        // budget — so a tiny budget degrades to "spill nothing", not to
        // thrashing everyone else.
        let mut displaced = Vec::new();
        while state.disk_bytes > self.budget_bytes {
            let victim = state
                .entries
                .iter()
                .filter(|(key, _)| !(key.0 == table && key.1 == partition))
                .min_by_key(|(key, e)| (e.tick, key.0.clone(), key.1))
                .map(|(key, _)| key.clone());
            let victim = match victim {
                Some(v) => v,
                None => {
                    // Only the new entry remains and it is over budget on
                    // its own: displace it too.
                    (table.to_string(), partition)
                }
            };
            if let Some(e) = state.entries.remove(&victim) {
                state.disk_bytes -= e.bytes;
            }
            let _ = fs::remove_file(self.file_path(&victim.0, victim.1));
            spill_metrics().displaced.inc();
            self.displaced_partitions.fetch_add(1, Ordering::Relaxed);
            let own = victim.0 == table && victim.1 == partition;
            displaced.push(victim);
            if own {
                break;
            }
        }
        Ok(StoreOutcome {
            spill_bytes,
            displaced,
        })
    }

    /// Forget every spilled partition of one table (table dropped or
    /// replaced): index entries and files both go.
    pub fn remove_table(&self, table: &str) {
        let mut state = self.state.lock();
        let victims: Vec<(String, usize)> = state
            .entries
            .keys()
            .filter(|(t, _)| t == table)
            .cloned()
            .collect();
        for key in victims {
            if let Some(e) = state.entries.remove(&key) {
                state.disk_bytes -= e.bytes;
            }
            let _ = fs::remove_file(self.file_path(&key.0, key.1));
        }
    }

    /// Spilled partitions a scan promoted since the last drain, as
    /// `(table, partition, memory bytes restored)` — the server turns these
    /// into `Promoted` eviction events and re-charges residency.
    pub fn drain_promotions(&self) -> Vec<(String, usize, u64)> {
        std::mem::take(&mut self.state.lock().promotions)
    }

    /// Append one event to the bounded WAL-event journal.
    fn journal(state: &mut SpillState, event: SpillEvent) {
        state.wal_events.push(event);
        if state.wal_events.len() > WAL_EVENT_CAP {
            let excess = state.wal_events.len() - WAL_EVENT_CAP;
            state.wal_events.drain(..excess);
        }
    }

    /// Spill-tier movements awaiting WAL journaling, oldest first. The
    /// journal is bounded (`WAL_EVENT_CAP`); on a durability-free server
    /// nobody drains it and the oldest events simply age out.
    pub fn drain_wal_events(&self) -> Vec<SpillEvent> {
        std::mem::take(&mut self.state.lock().wal_events)
    }

    /// The current tier contents as manifest entries, for persisting
    /// alongside a catalog snapshot.
    pub fn manifest_entries(&self) -> Vec<ManifestEntry> {
        let state = self.state.lock();
        let mut entries: Vec<ManifestEntry> = state
            .entries
            .iter()
            .map(|((table, partition), e)| ManifestEntry {
                table: table.clone(),
                partition: *partition as u64,
                table_version: e.version,
                file: self
                    .file_path(table, *partition)
                    .file_name()
                    .unwrap_or_default()
                    .to_string_lossy()
                    .into_owned(),
                file_bytes: e.bytes,
                checksum: e.checksum,
            })
            .collect();
        entries.sort_by(|a, b| (&a.table, a.partition).cmp(&(&b.table, b.partition)));
        entries
    }

    /// Re-adopt spill frames left by an earlier incarnation: for each
    /// expected entry, probe the frame header on disk (no payload read) and
    /// index the frame if everything matches — file name, size, version and
    /// checksum. A frame that is missing, undersized, corrupt or
    /// mismatched is rejected and deleted; its partition simply comes back
    /// via lineage. Returns `(adopted, rejected)` counts. Call before the
    /// manager is shared (restore runs single-threaded) and follow with
    /// [`SpillManager::sweep_orphans`].
    pub fn adopt(&self, expected: &[ManifestEntry]) -> (u64, u64) {
        let recovery = recovery_metrics();
        let mut adopted = 0u64;
        let mut rejected = 0u64;
        for entry in expected {
            let partition = entry.partition as usize;
            let path = self.file_path(&entry.table, partition);
            let canonical = path
                .file_name()
                .unwrap_or_default()
                .to_string_lossy()
                .into_owned();
            let ok = canonical == entry.file && self.probe_frame(&path, entry).is_some();
            if ok {
                let mut state = self.state.lock();
                state.clock += 1;
                let tick = state.clock;
                let prev = state.entries.insert(
                    (entry.table.clone(), partition),
                    SpillEntry {
                        bytes: entry.file_bytes,
                        tick,
                        version: entry.table_version,
                        checksum: entry.checksum,
                    },
                );
                if let Some(old) = prev {
                    state.disk_bytes -= old.bytes;
                }
                state.disk_bytes += entry.file_bytes;
                adopted += 1;
            } else {
                let _ = fs::remove_file(&path);
                rejected += 1;
            }
        }
        recovery.frames_adopted.add(adopted);
        recovery.frames_rejected.add(rejected);
        (adopted, rejected)
    }

    /// Header-only validation of one on-disk frame against its manifest
    /// entry. Reads [`SPILL_HEADER_BYTES`], never the payload; the full
    /// checksum pass stays where it always was — at fetch time.
    fn probe_frame(&self, path: &Path, entry: &ManifestEntry) -> Option<()> {
        let meta = fs::metadata(path).ok()?;
        if meta.len() != entry.file_bytes {
            return None;
        }
        let mut file = fs::File::open(path).ok()?;
        let mut header = [0u8; SPILL_HEADER_BYTES];
        file.read_exact(&mut header).ok()?;
        let header = read_frame_header(&header, Some(meta.len())).ok()?;
        (header.table_version == entry.table_version && header.checksum == entry.checksum)
            .then_some(())
    }

    /// Delete every `.spill` frame (and stray `.tmp-*` partial) in the
    /// directory that has no index entry — the explicit orphan sweep that
    /// replaced the old delete-everything startup sweep. Run it after
    /// [`SpillManager::adopt`] decided what is reachable (or right after
    /// [`SpillManager::create`] on a server without durability). Returns
    /// the number of files removed.
    pub fn sweep_orphans(&self) -> u64 {
        let live: std::collections::HashSet<std::ffi::OsString> = {
            let state = self.state.lock();
            state
                .entries
                .keys()
                .filter_map(|(table, partition)| {
                    self.file_path(table, *partition)
                        .file_name()
                        .map(Into::into)
                })
                .collect()
        };
        let mut removed = 0u64;
        if let Ok(listing) = fs::read_dir(&self.dir) {
            for entry in listing.flatten() {
                let name = entry.file_name();
                let lossy = name.to_string_lossy();
                let sweepable = lossy.ends_with(".spill") || lossy.contains(".tmp-");
                if sweepable && !live.contains(&name) {
                    let _ = fs::remove_file(entry.path());
                    removed += 1;
                }
            }
        }
        removed
    }

    /// Number of partitions currently on the spill tier.
    pub fn spilled_partition_count(&self) -> u64 {
        self.state.lock().entries.len() as u64
    }

    /// Bytes currently occupied on disk.
    pub fn disk_bytes(&self) -> u64 {
        self.state.lock().disk_bytes
    }

    /// The configured disk budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Whether one specific partition is currently spilled.
    pub fn is_spilled(&self, table: &str, partition: usize) -> bool {
        self.state
            .lock()
            .entries
            .contains_key(&(table.to_string(), partition))
    }

    /// Lifetime demotions (partitions written to the tier).
    pub fn spilled_partitions(&self) -> u64 {
        self.spilled_partitions.load(Ordering::Relaxed)
    }

    /// Lifetime spill-frame bytes written.
    pub fn spilled_bytes(&self) -> u64 {
        self.spilled_bytes.load(Ordering::Relaxed)
    }

    /// Lifetime promotions (partitions read back).
    pub fn promoted_partitions(&self) -> u64 {
        self.promoted_partitions.load(Ordering::Relaxed)
    }

    /// Lifetime spill-frame bytes read back.
    pub fn promoted_bytes(&self) -> u64 {
        self.promoted_bytes.load(Ordering::Relaxed)
    }

    /// Lifetime partitions displaced by the disk budget.
    pub fn displaced_partitions(&self) -> u64 {
        self.displaced_partitions.load(Ordering::Relaxed)
    }

    /// Lifetime spill files found corrupt and discarded.
    pub fn poisoned_files(&self) -> u64 {
        self.poisoned_files.load(Ordering::Relaxed)
    }

    /// Lifetime demotions abandoned because the frame could not be written.
    pub fn write_failures(&self) -> u64 {
        self.write_failures.load(Ordering::Relaxed)
    }

    /// Delete a poisoned frame and forget its entry.
    fn poison(&self, table: &str, partition: usize, detail: &str) {
        let mut state = self.state.lock();
        if let Some(e) = state.entries.remove(&(table.to_string(), partition)) {
            state.disk_bytes -= e.bytes;
        }
        drop(state);
        let _ = fs::remove_file(self.file_path(table, partition));
        spill_metrics().poisoned.inc();
        self.poisoned_files.fetch_add(1, Ordering::Relaxed);
        if shark_obs::active() {
            shark_obs::event(
                "spill-poisoned",
                &[
                    ("partition", &format!("{table}[{partition}]")),
                    ("detail", detail),
                ],
            );
        }
    }
}

impl SpillSource for SpillManager {
    /// Promote one partition: read and validate its frame, then *move* it
    /// off the tier (file and index entry are removed — the memtable copy
    /// the caller installs becomes the only one). Any validation failure —
    /// including a frame stamped with a different table version than the
    /// scan expects — poisons the file and returns `None`; the scan falls
    /// back to lineage.
    fn fetch(
        &self,
        table: &str,
        partition: usize,
        expected_version: u64,
    ) -> Option<(Arc<ColumnarPartition>, u64)> {
        let key = (table.to_string(), partition);
        let stale_version = {
            let state = self.state.lock();
            match state.entries.get(&key) {
                None => return None,
                Some(entry) if entry.version != expected_version => Some(entry.version),
                Some(_) => None,
            }
        };
        if let Some(frame_version) = stale_version {
            self.poison(
                table,
                partition,
                &format!(
                    "table version mismatch: frame v{frame_version}, expected v{expected_version}"
                ),
            );
            return None;
        }
        let started = Instant::now();
        let path = self.file_path(table, partition);
        let frame = match fs::read(&path) {
            Ok(frame) => frame,
            Err(e) => {
                self.poison(table, partition, &format!("read: {e}"));
                return None;
            }
        };
        let (columnar, frame_version) = match decode_partition(&frame) {
            Ok(decoded) => decoded,
            Err(e) => {
                self.poison(table, partition, &e.to_string());
                return None;
            }
        };
        if frame_version != expected_version {
            self.poison(
                table,
                partition,
                &format!(
                    "table version mismatch: frame v{frame_version}, expected v{expected_version}"
                ),
            );
            return None;
        }
        let io_bytes = frame.len() as u64;
        let memory_bytes = columnar.memory_bytes() as u64;
        let mut state = self.state.lock();
        if let Some(e) = state.entries.remove(&key) {
            state.disk_bytes -= e.bytes;
        }
        state
            .promotions
            .push((table.to_string(), partition, memory_bytes));
        Self::journal(
            &mut state,
            SpillEvent::Promoted {
                table: table.to_string(),
                partition,
                table_version: expected_version,
            },
        );
        drop(state);
        let _ = fs::remove_file(&path);
        spill_metrics()
            .read_seconds
            .observe(started.elapsed().as_secs_f64());
        spill_metrics().promoted.inc();
        spill_metrics().bytes_read.add(io_bytes);
        self.promoted_partitions.fetch_add(1, Ordering::Relaxed);
        self.promoted_bytes.fetch_add(io_bytes, Ordering::Relaxed);
        if shark_obs::active() {
            shark_obs::event(
                "spill-read",
                &[
                    ("partition", &format!("{table}[{partition}]")),
                    ("bytes", &io_bytes.to_string()),
                ],
            );
        }
        Some((Arc::new(columnar), io_bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shark_common::{row, DataType, Row, Schema};

    fn test_dir(tag: &str) -> PathBuf {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos();
        std::env::temp_dir().join(format!("shark-spill-{tag}-{}-{nanos}", std::process::id()))
    }

    fn partition(rows: usize) -> ColumnarPartition {
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("s", DataType::Str)]);
        let rows: Vec<Row> = (0..rows)
            .map(|i| row![i as i64, format!("value-{}", i % 7)])
            .collect();
        ColumnarPartition::from_rows(&schema, &rows)
    }

    #[test]
    fn store_then_fetch_moves_the_partition() {
        let dir = test_dir("roundtrip");
        let mgr = SpillManager::create(&dir, u64::MAX).unwrap();
        let p = partition(64);
        let outcome = mgr.store("t", 3, &p, 1).unwrap();
        assert!(outcome.spill_bytes > 0);
        assert!(outcome.displaced.is_empty());
        assert!(mgr.is_spilled("t", 3));
        assert_eq!(mgr.disk_bytes(), outcome.spill_bytes);

        let (fetched, io_bytes) = mgr.fetch("t", 3, 1).unwrap();
        assert_eq!(io_bytes, outcome.spill_bytes);
        assert_eq!(fetched.to_rows(), p.to_rows());
        // fetch is a move: nothing left on the tier.
        assert!(!mgr.is_spilled("t", 3));
        assert_eq!(mgr.disk_bytes(), 0);
        assert!(mgr.fetch("t", 3, 1).is_none());
        assert_eq!(mgr.drain_promotions().len(), 1);
        // Both movements were journaled for the WAL.
        let events = mgr.drain_wal_events();
        assert_eq!(events.len(), 2);
        assert!(matches!(
            &events[0],
            SpillEvent::Demoted { table, partition: 3, table_version: 1, .. } if table == "t"
        ));
        assert!(matches!(
            &events[1],
            SpillEvent::Promoted { table, partition: 3, table_version: 1 } if table == "t"
        ));
        assert!(mgr.drain_wal_events().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_mismatched_fetch_poisons_instead_of_serving_stale_rows() {
        let dir = test_dir("version");
        let mgr = SpillManager::create(&dir, u64::MAX).unwrap();
        let p = partition(32);
        mgr.store("t", 0, &p, 4).unwrap();
        // The table was dropped and recreated: scans now expect version 6.
        assert!(mgr.fetch("t", 0, 6).is_none());
        assert_eq!(mgr.poisoned_files(), 1);
        assert!(!mgr.is_spilled("t", 0));
        assert!(mgr.drain_promotions().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_budget_displaces_coldest_first() {
        let dir = test_dir("budget");
        let mgr = SpillManager::create(&dir, 1).unwrap(); // placeholder, resized below
        let p = partition(64);
        let frame_bytes = mgr.store("t", 0, &p, 1).unwrap().spill_bytes;
        let _ = fs::remove_dir_all(&dir);

        // Budget fits exactly two frames.
        let dir = test_dir("budget2");
        let mgr = SpillManager::create(&dir, frame_bytes * 2).unwrap();
        assert!(mgr.store("t", 0, &p, 1).unwrap().displaced.is_empty());
        assert!(mgr.store("t", 1, &p, 1).unwrap().displaced.is_empty());
        let third = mgr.store("t", 2, &p, 1).unwrap();
        // The coldest (first-spilled) partition was displaced.
        assert_eq!(third.displaced, vec![("t".to_string(), 0)]);
        assert!(!mgr.is_spilled("t", 0));
        assert!(mgr.is_spilled("t", 1));
        assert!(mgr.is_spilled("t", 2));
        assert!(mgr.disk_bytes() <= frame_bytes * 2);
        assert_eq!(mgr.displaced_partitions(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_frame_displaces_itself_not_others() {
        let dir = test_dir("oversized");
        let mgr = SpillManager::create(&dir, 8).unwrap(); // smaller than any frame
        let p = partition(64);
        let outcome = mgr.store("t", 5, &p, 1).unwrap();
        assert_eq!(outcome.displaced, vec![("t".to_string(), 5)]);
        assert!(!mgr.is_spilled("t", 5));
        assert_eq!(mgr.disk_bytes(), 0);
        assert!(mgr.fetch("t", 5, 1).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_frame_is_poisoned_and_skipped() {
        let dir = test_dir("poison");
        let mgr = SpillManager::create(&dir, u64::MAX).unwrap();
        let p = partition(64);
        mgr.store("t", 0, &p, 1).unwrap();
        // Flip a payload byte on disk.
        let file = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .find(|e| e.file_name().to_string_lossy().ends_with(".spill"))
            .unwrap()
            .path();
        let mut bytes = fs::read(&file).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&file, &bytes).unwrap();

        assert!(mgr.fetch("t", 0, 1).is_none());
        assert_eq!(mgr.poisoned_files(), 1);
        assert!(!mgr.is_spilled("t", 0));
        assert!(!file.exists(), "poisoned file must be deleted");
        // Poisoning is not a promotion.
        assert!(mgr.drain_promotions().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_keeps_frames_for_adoption_and_sweeps_only_partials() {
        let dir = test_dir("sweep");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("old_0.spill"), b"possibly re-adoptable").unwrap();
        fs::write(dir.join("old_1.spill.tmp-3f"), b"crashed mid-write").unwrap();
        fs::write(dir.join("unrelated.txt"), b"keep me").unwrap();
        let mgr = SpillManager::create(&dir, u64::MAX).unwrap();
        // Intact frames survive startup so a restore can adopt them; only
        // the crashed partial is gone.
        assert!(dir.join("old_0.spill").exists());
        assert!(!dir.join("old_1.spill.tmp-3f").exists());
        assert!(dir.join("unrelated.txt").exists());
        assert_eq!(mgr.disk_bytes(), 0);
        // The explicit orphan sweep removes what nobody adopted — and
        // nothing else.
        assert_eq!(mgr.sweep_orphans(), 1);
        assert!(!dir.join("old_0.spill").exists());
        assert!(dir.join("unrelated.txt").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn adopt_reindexes_valid_frames_and_rejects_damaged_ones() {
        let dir = test_dir("adopt");
        let p = partition(48);
        // First incarnation: three frames on disk, manifest captured.
        let manifest = {
            let mgr = SpillManager::create(&dir, u64::MAX).unwrap();
            mgr.store("t", 0, &p, 2).unwrap();
            mgr.store("t", 1, &p, 2).unwrap();
            mgr.store("t", 2, &p, 2).unwrap();
            mgr.manifest_entries()
        };
        assert_eq!(manifest.len(), 3);
        // Damage frame 1 on disk after the manifest was written.
        let f1 = manifest.iter().find(|e| e.partition == 1).unwrap();
        let path1 = dir.join(&f1.file);
        let mut bytes = fs::read(&path1).unwrap();
        bytes[SPILL_HEADER_BYTES] ^= 0xff; // payload flip — size unchanged
        fs::write(&path1, &bytes).unwrap();

        // Second incarnation adopts from the manifest.
        let mgr = SpillManager::create(&dir, u64::MAX).unwrap();
        let (adopted, rejected) = mgr.adopt(&manifest);
        // The header probe is header-only, so the payload flip sails
        // through adoption…
        assert_eq!((adopted, rejected), (3, 0));
        assert_eq!(mgr.sweep_orphans(), 0);
        assert_eq!(mgr.spilled_partition_count(), 3);
        // …and is caught by the full checksum at fetch time: poisoned, not
        // served.
        assert!(mgr.fetch("t", 1, 2).is_none());
        assert_eq!(mgr.poisoned_files(), 1);
        // Healthy adopted frames serve byte-identical rows.
        let (fetched, _) = mgr.fetch("t", 0, 2).unwrap();
        assert_eq!(fetched.to_rows(), p.to_rows());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn adopt_rejects_missing_truncated_and_version_mismatched_frames() {
        let dir = test_dir("adopt-reject");
        let p = partition(48);
        let manifest = {
            let mgr = SpillManager::create(&dir, u64::MAX).unwrap();
            mgr.store("t", 0, &p, 2).unwrap();
            mgr.store("t", 1, &p, 2).unwrap();
            mgr.store("t", 2, &p, 2).unwrap();
            mgr.manifest_entries()
        };
        // Frame 0: deleted. Frame 1: truncated. Frame 2: manifest expects a
        // different table version than the header carries.
        let by_partition = |n: u64| manifest.iter().find(|e| e.partition == n).unwrap();
        fs::remove_file(dir.join(&by_partition(0).file)).unwrap();
        let path1 = dir.join(&by_partition(1).file);
        let bytes = fs::read(&path1).unwrap();
        fs::write(&path1, &bytes[..bytes.len() - 4]).unwrap();
        let mut tampered = manifest.clone();
        tampered
            .iter_mut()
            .find(|e| e.partition == 2)
            .unwrap()
            .table_version = 9;

        let mgr = SpillManager::create(&dir, u64::MAX).unwrap();
        let (adopted, rejected) = mgr.adopt(&tampered);
        assert_eq!((adopted, rejected), (0, 3));
        assert_eq!(mgr.spilled_partition_count(), 0);
        assert_eq!(mgr.disk_bytes(), 0);
        // Rejected frames were deleted on the spot.
        assert!(!dir.join(&by_partition(1).file).exists());
        assert!(!dir.join(&by_partition(2).file).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn remove_table_clears_only_that_table() {
        let dir = test_dir("remove");
        let mgr = SpillManager::create(&dir, u64::MAX).unwrap();
        let p = partition(32);
        mgr.store("a", 0, &p, 1).unwrap();
        mgr.store("a", 1, &p, 1).unwrap();
        mgr.store("b", 0, &p, 1).unwrap();
        mgr.remove_table("a");
        assert!(!mgr.is_spilled("a", 0));
        assert!(!mgr.is_spilled("a", 1));
        assert!(mgr.is_spilled("b", 0));
        assert_eq!(mgr.spilled_partition_count(), 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
