//! Durable catalog: write-ahead log, catalog snapshots and the spill
//! manifest.
//!
//! A `SharkServer` configured with a spill directory keeps three durability
//! files next to its spill frames (the normative byte-level spec for all of
//! them lives in `docs/ondisk-formats.md` at the repository root — keep the
//! two in sync, and bump the per-file format version on any incompatible
//! change):
//!
//! * `catalog.wal` — an append-only log of committed catalog mutations
//!   (CTAS/register, `DROP TABLE`) and spill-tier movements (demotions,
//!   promotions), each keyed by the catalog epoch it happened at. Records
//!   are length-prefixed and FNV-checksummed individually, and appended in
//!   fsync'd batches at query boundaries: one `fsync` covers every record a
//!   query committed, not one per record.
//! * `catalog.snapshot` — a periodically rewritten image of the full table
//!   map at one epoch, bounding how much WAL a restart must replay. Written
//!   atomically (temp file + rename), so a crash mid-snapshot leaves the
//!   previous snapshot intact.
//! * `spill.manifest` — the map of spill frames expected on disk (table,
//!   partition, table version, file name, size, frame checksum). Restore
//!   uses it to *re-adopt* frames instead of orphan-sweeping them; an entry
//!   that disagrees with the file it describes poisons that frame down to
//!   lineage recompute, never a query error.
//!
//! Replay ([`replay_wal`]) is tolerant of exactly one kind of damage: a
//! torn tail. A crash mid-append leaves a prefix of whole, checksummed
//! records followed by garbage; replay stops at the first record that fails
//! validation and reports the valid byte count so the writer can truncate
//! the tail and append from there. Damage *before* the tail (a bit flip in
//! an early record) also truncates at that point — everything after it is
//! unreachable, and the affected tables simply come back cold via their
//! base generators.
//!
//! What durability does **not** cover: row generators. A [`RowGenerator`]
//! is an arbitrary closure and cannot be serialized; the WAL and snapshot
//! persist table *metadata* only (name, schema, partitioning, version).
//! `SharkServer::restore_with` re-attaches generators through a resolver
//! callback — tables it declines get a placeholder generator that panics on
//! first use, which is fine for demoted tables served entirely from
//! re-adopted spill frames and loud for anything that actually needs
//! lineage.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use shark_common::{DataType, Field, Result, Schema, SharkError};
use shark_sql::{DdlRecord, RowGenerator, TableMeta};

/// Magic bytes opening the WAL file.
pub const WAL_MAGIC: [u8; 8] = *b"SHRKWAL1";
/// Current WAL format version.
pub const WAL_VERSION: u32 = 1;
/// Magic bytes opening a catalog snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"SHRKSNP1";
/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;
/// Magic bytes opening a spill manifest file.
pub const MANIFEST_MAGIC: [u8; 8] = *b"SHRKMAN1";
/// Current manifest format version.
pub const MANIFEST_VERSION: u32 = 1;

/// WAL file name within the durability (spill) directory.
pub const WAL_FILE: &str = "catalog.wal";
/// Snapshot file name within the durability (spill) directory.
pub const SNAPSHOT_FILE: &str = "catalog.snapshot";
/// Manifest file name within the durability (spill) directory.
pub const MANIFEST_FILE: &str = "spill.manifest";

/// Size of the WAL file header (magic + format version).
const WAL_HEADER_BYTES: usize = 8 + 4;
/// Per-record framing overhead: length (u32) + checksum (u64).
const RECORD_FRAME_BYTES: usize = 4 + 8;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn io_err(what: &str, path: &Path, e: std::io::Error) -> SharkError {
    SharkError::Execution(format!("{what} {}: {e}", path.display()))
}

fn format_err(what: &str, detail: impl Into<String>) -> SharkError {
    SharkError::Execution(format!("{what}: {}", detail.into()))
}

/// Cached unified-registry handles for WAL-write metrics.
struct WalMetrics {
    records: Arc<shark_obs::Counter>,
    batches: Arc<shark_obs::Counter>,
    bytes_written: Arc<shark_obs::Counter>,
    torn_tail_bytes: Arc<shark_obs::Counter>,
    fsync_seconds: Arc<shark_obs::Histogram>,
}

fn wal_metrics() -> &'static WalMetrics {
    static METRICS: std::sync::OnceLock<WalMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = shark_obs::metrics();
        WalMetrics {
            records: reg.counter(
                "shark_wal_records_total",
                "Records appended to the catalog write-ahead log",
            ),
            batches: reg.counter(
                "shark_wal_batches_total",
                "Fsync'd record batches committed to the write-ahead log",
            ),
            bytes_written: reg.counter(
                "shark_wal_bytes_written_total",
                "Bytes appended to the write-ahead log",
            ),
            torn_tail_bytes: reg.counter(
                "shark_wal_torn_tail_bytes_total",
                "Bytes truncated from torn or corrupt WAL tails on replay",
            ),
            fsync_seconds: reg.histogram(
                "shark_wal_fsync_seconds",
                "Latency of the fsync concluding one WAL batch commit",
                shark_obs::IO_BUCKETS,
            ),
        }
    })
}

/// Cached unified-registry handles for restore/recovery metrics, shared by
/// the WAL replayer, the spill manager's adoption pass and the server's
/// restore path.
pub(crate) struct RecoveryMetrics {
    pub(crate) restores: Arc<shark_obs::Counter>,
    pub(crate) wal_records_replayed: Arc<shark_obs::Counter>,
    pub(crate) torn_wal_tails: Arc<shark_obs::Counter>,
    pub(crate) tables_restored: Arc<shark_obs::Counter>,
    pub(crate) frames_adopted: Arc<shark_obs::Counter>,
    pub(crate) frames_rejected: Arc<shark_obs::Counter>,
    pub(crate) seconds: Arc<shark_obs::Histogram>,
}

pub(crate) fn recovery_metrics() -> &'static RecoveryMetrics {
    static METRICS: std::sync::OnceLock<RecoveryMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = shark_obs::metrics();
        RecoveryMetrics {
            restores: reg.counter(
                "shark_recovery_restores_total",
                "Server restores performed from snapshot + WAL",
            ),
            wal_records_replayed: reg.counter(
                "shark_recovery_wal_records_replayed_total",
                "WAL records replayed during restores",
            ),
            torn_wal_tails: reg.counter(
                "shark_recovery_torn_wal_tails_total",
                "Restores that truncated a torn or corrupt WAL tail",
            ),
            tables_restored: reg.counter(
                "shark_recovery_tables_restored_total",
                "Tables re-registered from snapshot + WAL during restores",
            ),
            frames_adopted: reg.counter(
                "shark_recovery_frames_adopted_total",
                "Spill frames re-adopted into the spill tier during restores",
            ),
            frames_rejected: reg.counter(
                "shark_recovery_frames_rejected_total",
                "Manifest entries rejected during restores (missing, corrupt or version-mismatched frames)",
            ),
            seconds: reg.histogram(
                "shark_recovery_seconds",
                "Wall-clock duration of server restores",
                shark_obs::IO_BUCKETS,
            ),
        }
    })
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// Serializable metadata of one table version — everything a restore needs
/// to re-register it except the row generator (closures do not serialize;
/// see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct TableRecord {
    /// Lower-cased table name.
    pub name: String,
    /// Schema as `(column name, data type)` pairs.
    pub fields: Vec<(String, DataType)>,
    /// Partition count.
    pub num_partitions: u64,
    /// [`TableMeta::version`] — the epoch the version was installed at.
    pub version: u64,
    /// Whether the table had a memstore attached.
    pub cached: bool,
    /// Column index of `DISTRIBUTE BY`, if declared.
    pub distribute_by: Option<u64>,
    /// Co-partitioned peer table, if declared.
    pub copartitioned_with: Option<String>,
    /// Optimizer row-count hint, if provided.
    pub row_count_hint: Option<u64>,
}

impl TableRecord {
    /// Capture the serializable metadata of a live table version.
    pub fn from_meta(meta: &TableMeta) -> TableRecord {
        TableRecord {
            name: meta.name.clone(),
            fields: meta
                .schema
                .fields()
                .iter()
                .map(|f| (f.name.to_string(), f.data_type))
                .collect(),
            num_partitions: meta.num_partitions as u64,
            version: meta.version(),
            cached: meta.is_cached(),
            distribute_by: meta.distribute_by.map(|i| i as u64),
            copartitioned_with: meta.copartitioned_with.clone(),
            row_count_hint: meta.row_count_hint,
        }
    }

    /// Rebuild a [`TableMeta`] from recorded metadata, attaching the given
    /// generator (the caller resolves it, or supplies a loud placeholder)
    /// and distributing cached partitions over `num_nodes`.
    pub fn into_meta(&self, generator: RowGenerator, num_nodes: usize) -> TableMeta {
        let schema = Schema::new(
            self.fields
                .iter()
                .map(|(name, dt)| Field::new(name, *dt))
                .collect(),
        );
        let gen = generator;
        let mut meta = TableMeta::new(&self.name, schema, self.num_partitions as usize, move |p| {
            gen(p)
        })
        .with_version(self.version);
        if self.cached {
            meta = meta.with_cache(num_nodes);
        }
        meta.distribute_by = self.distribute_by.map(|i| i as usize);
        meta.copartitioned_with = self.copartitioned_with.clone();
        meta.row_count_hint = self.row_count_hint;
        meta
    }
}

/// One durable record in the catalog WAL. Every variant carries the catalog
/// epoch it was committed at, so replay can reconstruct the exact epoch
/// sequence.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A table version was registered (CTAS, `register_table`, or a
    /// same-name replacement) at this epoch.
    Created {
        /// Epoch the registration bumped the catalog to.
        epoch: u64,
        /// The installed version's metadata.
        table: TableRecord,
    },
    /// A table was dropped at this epoch.
    Dropped {
        /// Epoch the drop bumped the catalog to.
        epoch: u64,
        /// Lower-cased table name.
        name: String,
    },
    /// A partition was demoted to the spill tier.
    Demoted {
        /// Catalog epoch at the time of the demotion.
        epoch: u64,
        /// Owning table (lower-cased).
        table: String,
        /// [`TableMeta::version`] of the owning table version.
        table_version: u64,
        /// Partition index.
        partition: u64,
        /// On-disk frame size in bytes.
        bytes: u64,
        /// The frame's header checksum.
        checksum: u64,
    },
    /// A demoted partition was promoted back into memory (its frame is
    /// gone — promotion is a move).
    Promoted {
        /// Catalog epoch at the time of the promotion.
        epoch: u64,
        /// Owning table (lower-cased).
        table: String,
        /// [`TableMeta::version`] of the owning table version.
        table_version: u64,
        /// Partition index.
        partition: u64,
    },
}

impl WalRecord {
    /// Translate one drained catalog-journal record into its WAL form.
    pub fn from_ddl(record: &DdlRecord) -> WalRecord {
        match record {
            DdlRecord::Created { epoch, table } => WalRecord::Created {
                epoch: *epoch,
                table: TableRecord::from_meta(table),
            },
            DdlRecord::Dropped { epoch, name } => WalRecord::Dropped {
                epoch: *epoch,
                name: name.clone(),
            },
        }
    }

    /// The epoch this record was committed at.
    pub fn epoch(&self) -> u64 {
        match self {
            WalRecord::Created { epoch, .. }
            | WalRecord::Dropped { epoch, .. }
            | WalRecord::Demoted { epoch, .. }
            | WalRecord::Promoted { epoch, .. } => *epoch,
        }
    }
}

// ---------------------------------------------------------------------------
// Body codec (shared by records, snapshot and manifest payloads)
// ---------------------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Writer {
        Writer { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(v) => {
                self.u8(1);
                self.u64(v);
            }
        }
    }

    fn opt_str(&mut self, v: Option<&str>) {
        match v {
            None => self.u8(0),
            Some(s) => {
                self.u8(1);
                self.str(s);
            }
        }
    }

    fn table(&mut self, t: &TableRecord) {
        self.str(&t.name);
        self.u32(t.fields.len() as u32);
        for (name, dt) in &t.fields {
            self.str(name);
            self.u8(type_tag(*dt));
        }
        self.u64(t.num_partitions);
        self.u64(t.version);
        self.u8(t.cached as u8);
        self.opt_u64(t.distribute_by);
        self.opt_str(t.copartitioned_with.as_deref());
        self.opt_u64(t.row_count_hint);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(format_err(
                "wal record",
                format!(
                    "truncated body (wanted {n} bytes at offset {}, {} available)",
                    self.pos,
                    self.buf.len() - self.pos
                ),
            ));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Bounded element count: anything beyond the body size itself signals
    /// corruption, not data.
    fn len(&mut self) -> Result<usize> {
        let n = self.u32()?;
        if n as usize > self.buf.len() {
            return Err(format_err(
                "wal record",
                format!("implausible element count {n}"),
            ));
        }
        Ok(n as usize)
    }

    fn str(&mut self) -> Result<String> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        std::str::from_utf8(bytes)
            .map(str::to_string)
            .map_err(|_| format_err("wal record", "invalid UTF-8 in string"))
    }

    fn opt_u64(&mut self) -> Result<Option<u64>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            other => Err(format_err(
                "wal record",
                format!("bad option marker {other}"),
            )),
        }
    }

    fn opt_str(&mut self) -> Result<Option<String>> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.str()?)),
            other => Err(format_err(
                "wal record",
                format!("bad option marker {other}"),
            )),
        }
    }

    fn table(&mut self) -> Result<TableRecord> {
        let name = self.str()?;
        let num_fields = self.len()?;
        let mut fields = Vec::with_capacity(num_fields);
        for _ in 0..num_fields {
            let field = self.str()?;
            let dt = tag_type(self.u8()?)?;
            fields.push((field, dt));
        }
        Ok(TableRecord {
            name,
            fields,
            num_partitions: self.u64()?,
            version: self.u64()?,
            cached: self.u8()? != 0,
            distribute_by: self.opt_u64()?,
            copartitioned_with: self.opt_str()?,
            row_count_hint: self.opt_u64()?,
        })
    }

    fn finish(&self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(format_err(
                "wal record",
                format!("{} trailing bytes", self.buf.len() - self.pos),
            ));
        }
        Ok(())
    }
}

/// Data-type tags, identical to the spill-frame codec's so the two specs
/// share one table.
fn type_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Str => 2,
        DataType::Bool => 3,
        DataType::Date => 4,
        DataType::Null => 5,
    }
}

fn tag_type(tag: u8) -> Result<DataType> {
    Ok(match tag {
        0 => DataType::Int,
        1 => DataType::Float,
        2 => DataType::Str,
        3 => DataType::Bool,
        4 => DataType::Date,
        5 => DataType::Null,
        other => {
            return Err(format_err(
                "wal record",
                format!("unknown type tag {other}"),
            ))
        }
    })
}

const KIND_CREATED: u8 = 1;
const KIND_DROPPED: u8 = 2;
const KIND_DEMOTED: u8 = 3;
const KIND_PROMOTED: u8 = 4;

fn encode_record(record: &WalRecord) -> Vec<u8> {
    let mut w = Writer::new();
    match record {
        WalRecord::Created { epoch, table } => {
            w.u8(KIND_CREATED);
            w.u64(*epoch);
            w.table(table);
        }
        WalRecord::Dropped { epoch, name } => {
            w.u8(KIND_DROPPED);
            w.u64(*epoch);
            w.str(name);
        }
        WalRecord::Demoted {
            epoch,
            table,
            table_version,
            partition,
            bytes,
            checksum,
        } => {
            w.u8(KIND_DEMOTED);
            w.u64(*epoch);
            w.str(table);
            w.u64(*table_version);
            w.u64(*partition);
            w.u64(*bytes);
            w.u64(*checksum);
        }
        WalRecord::Promoted {
            epoch,
            table,
            table_version,
            partition,
        } => {
            w.u8(KIND_PROMOTED);
            w.u64(*epoch);
            w.str(table);
            w.u64(*table_version);
            w.u64(*partition);
        }
    }
    w.buf
}

fn decode_record(body: &[u8]) -> Result<WalRecord> {
    let mut r = Reader::new(body);
    let record = match r.u8()? {
        KIND_CREATED => WalRecord::Created {
            epoch: r.u64()?,
            table: r.table()?,
        },
        KIND_DROPPED => WalRecord::Dropped {
            epoch: r.u64()?,
            name: r.str()?,
        },
        KIND_DEMOTED => WalRecord::Demoted {
            epoch: r.u64()?,
            table: r.str()?,
            table_version: r.u64()?,
            partition: r.u64()?,
            bytes: r.u64()?,
            checksum: r.u64()?,
        },
        KIND_PROMOTED => WalRecord::Promoted {
            epoch: r.u64()?,
            table: r.str()?,
            table_version: r.u64()?,
            partition: r.u64()?,
        },
        other => {
            return Err(format_err(
                "wal record",
                format!("unknown record kind {other}"),
            ))
        }
    };
    r.finish()?;
    Ok(record)
}

// ---------------------------------------------------------------------------
// WAL writer + replay
// ---------------------------------------------------------------------------

/// Append-only writer over the catalog WAL. Batches are durable: every
/// [`WalWriter::append_batch`] concludes with one fsync covering all of its
/// records.
pub struct WalWriter {
    file: fs::File,
    path: PathBuf,
    records: u64,
}

impl WalWriter {
    /// Create (or truncate) a fresh WAL holding only the file header,
    /// fsync'd before returning.
    pub fn create(path: impl Into<PathBuf>) -> Result<WalWriter> {
        let path = path.into();
        let mut file = fs::File::create(&path).map_err(|e| io_err("wal create", &path, e))?;
        let mut header = Vec::with_capacity(WAL_HEADER_BYTES);
        header.extend_from_slice(&WAL_MAGIC);
        header.extend_from_slice(&WAL_VERSION.to_le_bytes());
        file.write_all(&header)
            .and_then(|_| file.sync_data())
            .map_err(|e| io_err("wal header", &path, e))?;
        Ok(WalWriter {
            file,
            path,
            records: 0,
        })
    }

    /// Reopen an existing WAL for appending after [`replay_wal`] validated
    /// it, truncating any torn tail past `replay.valid_bytes`. A replay
    /// that found nothing valid (missing file, bad header) falls back to
    /// creating a fresh WAL.
    pub fn open_after_replay(path: impl Into<PathBuf>, replay: &WalReplay) -> Result<WalWriter> {
        let path = path.into();
        if replay.valid_bytes < WAL_HEADER_BYTES as u64 {
            return WalWriter::create(path);
        }
        let file = fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .map_err(|e| io_err("wal open", &path, e))?;
        file.set_len(replay.valid_bytes)
            .and_then(|_| file.sync_data())
            .map_err(|e| io_err("wal truncate", &path, e))?;
        // Appends go through write_all at the cursor; position it past the
        // validated prefix.
        use std::io::Seek as _;
        let mut file = file;
        file.seek(std::io::SeekFrom::Start(replay.valid_bytes))
            .map_err(|e| io_err("wal seek", &path, e))?;
        Ok(WalWriter {
            file,
            path,
            records: replay.records.len() as u64,
        })
    }

    /// Append a batch of records and fsync once. An empty batch is a no-op
    /// (no write, no fsync).
    pub fn append_batch(&mut self, records: &[WalRecord]) -> Result<()> {
        if records.is_empty() {
            return Ok(());
        }
        let mut buf = Vec::new();
        for record in records {
            let body = encode_record(record);
            buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
            buf.extend_from_slice(&fnv1a(&body).to_le_bytes());
            buf.extend_from_slice(&body);
        }
        self.file
            .write_all(&buf)
            .map_err(|e| io_err("wal append", &self.path, e))?;
        let fsync_started = Instant::now();
        self.file
            .sync_data()
            .map_err(|e| io_err("wal fsync", &self.path, e))?;
        let m = wal_metrics();
        m.fsync_seconds
            .observe(fsync_started.elapsed().as_secs_f64());
        m.records.add(records.len() as u64);
        m.batches.inc();
        m.bytes_written.add(buf.len() as u64);
        self.records += records.len() as u64;
        if shark_obs::active() {
            shark_obs::event(
                "wal-commit",
                &[
                    ("records", &records.len().to_string()),
                    ("bytes", &buf.len().to_string()),
                ],
            );
        }
        Ok(())
    }

    /// Records appended so far (including those replayed before reopening).
    pub fn record_count(&self) -> u64 {
        self.records
    }

    /// The WAL file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// The outcome of replaying a WAL file: every validated record in order,
/// the byte length of the validated prefix (where an appender must
/// truncate to), and whether a torn or corrupt tail was cut off.
#[derive(Debug)]
pub struct WalReplay {
    /// Validated records, oldest first.
    pub records: Vec<WalRecord>,
    /// Length of the validated prefix; bytes past this are garbage.
    pub valid_bytes: u64,
    /// Whether bytes past the validated prefix existed (torn tail, corrupt
    /// record, or a foreign/corrupt header).
    pub torn: bool,
}

/// Replay a WAL file, validating record by record and stopping at the
/// first sign of damage (see the module docs for the torn-tail contract).
/// A missing file yields an empty, untorn replay; an unreadable or
/// foreign-header file yields an empty, *torn* replay — either way the
/// caller proceeds with what was validated and truncates the rest.
pub fn replay_wal(path: &Path) -> WalReplay {
    let bytes = match fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return WalReplay {
                records: Vec::new(),
                valid_bytes: 0,
                torn: false,
            }
        }
        Err(_) => {
            return WalReplay {
                records: Vec::new(),
                valid_bytes: 0,
                torn: true,
            }
        }
    };
    if bytes.len() < WAL_HEADER_BYTES
        || bytes[..8] != WAL_MAGIC
        || u32::from_le_bytes(bytes[8..12].try_into().unwrap()) != WAL_VERSION
    {
        wal_metrics().torn_tail_bytes.add(bytes.len() as u64);
        return WalReplay {
            records: Vec::new(),
            valid_bytes: 0,
            torn: true,
        };
    }
    let mut records = Vec::new();
    let mut pos = WAL_HEADER_BYTES;
    let mut torn = false;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < RECORD_FRAME_BYTES {
            torn = true;
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let checksum = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap());
        if len > remaining - RECORD_FRAME_BYTES {
            torn = true;
            break;
        }
        let body = &bytes[pos + RECORD_FRAME_BYTES..pos + RECORD_FRAME_BYTES + len];
        if fnv1a(body) != checksum {
            torn = true;
            break;
        }
        match decode_record(body) {
            Ok(record) => records.push(record),
            Err(_) => {
                torn = true;
                break;
            }
        }
        pos += RECORD_FRAME_BYTES + len;
    }
    if torn {
        wal_metrics()
            .torn_tail_bytes
            .add((bytes.len() - pos) as u64);
    }
    WalReplay {
        records,
        valid_bytes: pos as u64,
        torn,
    }
}

// ---------------------------------------------------------------------------
// Snapshot + manifest files
// ---------------------------------------------------------------------------

/// A catalog snapshot: the full table map at one epoch. Restore loads it,
/// then replays the WAL records committed after it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SnapshotFile {
    /// The catalog epoch the snapshot was taken at.
    pub epoch: u64,
    /// Every table in the map, with its metadata.
    pub tables: Vec<TableRecord>,
}

/// One spill frame the manifest expects on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Owning table (lower-cased).
    pub table: String,
    /// Partition index.
    pub partition: u64,
    /// [`TableMeta::version`] the frame was written under.
    pub table_version: u64,
    /// Frame file name within the spill directory.
    pub file: String,
    /// Expected total file size in bytes.
    pub file_bytes: u64,
    /// Expected frame-header checksum.
    pub checksum: u64,
}

/// The spill manifest: the set of frames a restore may re-adopt.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpillManifest {
    /// One entry per expected frame.
    pub entries: Vec<ManifestEntry>,
}

/// Write a length-prefixed, checksummed envelope atomically: temp file in
/// the same directory, fsync, rename into place.
fn write_envelope(path: &Path, magic: &[u8; 8], version: u32, payload: &[u8]) -> Result<()> {
    let mut bytes = Vec::with_capacity(28 + payload.len());
    bytes.extend_from_slice(magic);
    bytes.extend_from_slice(&version.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&fnv1a(payload).to_le_bytes());
    bytes.extend_from_slice(payload);
    let tmp = path.with_extension("tmp-write");
    let mut file = fs::File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
    file.write_all(&bytes)
        .and_then(|_| file.sync_data())
        .map_err(|e| io_err("write", &tmp, e))?;
    drop(file);
    fs::rename(&tmp, path).map_err(|e| io_err("rename", path, e))
}

/// Read and validate an envelope written by [`write_envelope`].
fn read_envelope(path: &Path, magic: &[u8; 8], version: u32, what: &str) -> Result<Vec<u8>> {
    let bytes = fs::read(path).map_err(|e| io_err(what, path, e))?;
    if bytes.len() < 28 {
        return Err(format_err(what, "file shorter than header"));
    }
    if bytes[..8] != *magic {
        return Err(format_err(what, "bad magic"));
    }
    let file_version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if file_version != version {
        return Err(format_err(
            what,
            format!("unsupported version {file_version} (expected {version})"),
        ));
    }
    let length = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let checksum = u64::from_le_bytes(bytes[20..28].try_into().unwrap());
    let payload = &bytes[28..];
    if payload.len() as u64 != length {
        return Err(format_err(
            what,
            format!(
                "payload length mismatch (header says {length}, file has {})",
                payload.len()
            ),
        ));
    }
    if fnv1a(payload) != checksum {
        return Err(format_err(what, "checksum mismatch"));
    }
    Ok(payload.to_vec())
}

/// Atomically write a catalog snapshot.
pub fn write_snapshot(path: &Path, snapshot: &SnapshotFile) -> Result<()> {
    let mut w = Writer::new();
    w.u64(snapshot.epoch);
    w.u32(snapshot.tables.len() as u32);
    for table in &snapshot.tables {
        w.table(table);
    }
    write_envelope(path, &SNAPSHOT_MAGIC, SNAPSHOT_VERSION, &w.buf)
}

/// Read and validate a catalog snapshot. Any structural violation is an
/// error; restore treats it as "no snapshot" and replays the WAL from the
/// beginning.
pub fn read_snapshot(path: &Path) -> Result<SnapshotFile> {
    let payload = read_envelope(path, &SNAPSHOT_MAGIC, SNAPSHOT_VERSION, "catalog snapshot")?;
    let mut r = Reader::new(&payload);
    let epoch = r.u64()?;
    let count = r.len()?;
    let mut tables = Vec::with_capacity(count);
    for _ in 0..count {
        tables.push(r.table()?);
    }
    r.finish()?;
    Ok(SnapshotFile { epoch, tables })
}

/// Atomically write the spill manifest.
pub fn write_manifest(path: &Path, manifest: &SpillManifest) -> Result<()> {
    let mut w = Writer::new();
    w.u32(manifest.entries.len() as u32);
    for e in &manifest.entries {
        w.str(&e.table);
        w.u64(e.partition);
        w.u64(e.table_version);
        w.str(&e.file);
        w.u64(e.file_bytes);
        w.u64(e.checksum);
    }
    write_envelope(path, &MANIFEST_MAGIC, MANIFEST_VERSION, &w.buf)
}

/// Read and validate the spill manifest. Any structural violation is an
/// error; restore treats it as "no manifest" and falls back to the WAL's
/// demotion records (and, failing those, lineage).
pub fn read_manifest(path: &Path) -> Result<SpillManifest> {
    let payload = read_envelope(path, &MANIFEST_MAGIC, MANIFEST_VERSION, "spill manifest")?;
    let mut r = Reader::new(&payload);
    let count = r.len()?;
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        entries.push(ManifestEntry {
            table: r.str()?,
            partition: r.u64()?,
            table_version: r.u64()?,
            file: r.str()?,
            file_bytes: r.u64()?,
            checksum: r.u64()?,
        });
    }
    r.finish()?;
    Ok(SpillManifest { entries })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_dir(tag: &str) -> PathBuf {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos();
        let dir =
            std::env::temp_dir().join(format!("shark-wal-{tag}-{}-{nanos}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_table(name: &str, version: u64) -> TableRecord {
        TableRecord {
            name: name.to_string(),
            fields: vec![
                ("k".to_string(), DataType::Int),
                ("grp".to_string(), DataType::Str),
                ("amount".to_string(), DataType::Float),
            ],
            num_partitions: 6,
            version,
            cached: true,
            distribute_by: Some(0),
            copartitioned_with: Some("peer".to_string()),
            row_count_hint: Some(480),
        }
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::Created {
                epoch: 1,
                table: sample_table("mixed", 1),
            },
            WalRecord::Demoted {
                epoch: 1,
                table: "mixed".to_string(),
                table_version: 1,
                partition: 3,
                bytes: 4096,
                checksum: 0xdead_beef,
            },
            WalRecord::Promoted {
                epoch: 1,
                table: "mixed".to_string(),
                table_version: 1,
                partition: 3,
            },
            WalRecord::Dropped {
                epoch: 2,
                name: "mixed".to_string(),
            },
        ]
    }

    #[test]
    fn wal_batch_roundtrip() {
        let dir = test_dir("roundtrip");
        let path = dir.join(WAL_FILE);
        let mut wal = WalWriter::create(&path).unwrap();
        let records = sample_records();
        wal.append_batch(&records[..2]).unwrap();
        wal.append_batch(&records[2..]).unwrap();
        wal.append_batch(&[]).unwrap();
        assert_eq!(wal.record_count(), 4);
        drop(wal);

        let replay = replay_wal(&path);
        assert!(!replay.torn);
        assert_eq!(replay.records, records);
        assert_eq!(
            replay.valid_bytes,
            fs::metadata(&path).unwrap().len(),
            "clean replay validates the whole file"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_wal_is_an_empty_untorn_replay() {
        let dir = test_dir("missing");
        let replay = replay_wal(&dir.join(WAL_FILE));
        assert!(!replay.torn);
        assert!(replay.records.is_empty());
        assert_eq!(replay.valid_bytes, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_truncates_to_last_good_record() {
        let dir = test_dir("torn");
        let path = dir.join(WAL_FILE);
        let mut wal = WalWriter::create(&path).unwrap();
        let records = sample_records();
        wal.append_batch(&records).unwrap();
        drop(wal);
        let full = fs::read(&path).unwrap();

        // Cut the file at every byte of the last record: replay must
        // always recover the first three records exactly.
        let clean = replay_wal(&path);
        let third_end = {
            // Re-derive the offset of the fourth record by replaying a
            // 3-record file.
            let mut wal = WalWriter::create(&path).unwrap();
            wal.append_batch(&records[..3]).unwrap();
            drop(wal);
            fs::metadata(&path).unwrap().len() as usize
        };
        for cut in [third_end + 1, third_end + 5, full.len() - 1] {
            fs::write(&path, &full[..cut]).unwrap();
            let replay = replay_wal(&path);
            assert!(replay.torn, "cut at {cut}");
            assert_eq!(replay.records, records[..3], "cut at {cut}");
            assert_eq!(replay.valid_bytes, third_end as u64, "cut at {cut}");
        }
        assert_eq!(clean.records.len(), 4);

        // Reopening after a torn replay truncates, and appending resumes.
        fs::write(&path, &full[..third_end + 5]).unwrap();
        let replay = replay_wal(&path);
        let mut wal = WalWriter::open_after_replay(&path, &replay).unwrap();
        assert_eq!(wal.record_count(), 3);
        wal.append_batch(&records[3..]).unwrap();
        drop(wal);
        let replay = replay_wal(&path);
        assert!(!replay.torn);
        assert_eq!(replay.records, records);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_record_truncates_the_rest() {
        let dir = test_dir("corrupt");
        let path = dir.join(WAL_FILE);
        let mut wal = WalWriter::create(&path).unwrap();
        wal.append_batch(&sample_records()).unwrap();
        drop(wal);
        // Flip a byte in the first record's body: everything from that
        // record on is unreachable.
        let mut bytes = fs::read(&path).unwrap();
        let flip = WAL_HEADER_BYTES + RECORD_FRAME_BYTES + 2;
        bytes[flip] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let replay = replay_wal(&path);
        assert!(replay.torn);
        assert!(replay.records.is_empty());
        assert_eq!(replay.valid_bytes, WAL_HEADER_BYTES as u64);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_header_is_fully_torn() {
        let dir = test_dir("foreign");
        let path = dir.join(WAL_FILE);
        fs::write(&path, b"not a wal at all").unwrap();
        let replay = replay_wal(&path);
        assert!(replay.torn);
        assert_eq!(replay.valid_bytes, 0);
        // open_after_replay falls back to a fresh WAL.
        let mut wal = WalWriter::open_after_replay(&path, &replay).unwrap();
        wal.append_batch(&sample_records()[..1]).unwrap();
        drop(wal);
        let replay = replay_wal(&path);
        assert!(!replay.torn);
        assert_eq!(replay.records.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_roundtrip_and_corruption_detection() {
        let dir = test_dir("snapshot");
        let path = dir.join(SNAPSHOT_FILE);
        let snapshot = SnapshotFile {
            epoch: 12,
            tables: vec![sample_table("a", 3), sample_table("b", 12)],
        };
        write_snapshot(&path, &snapshot).unwrap();
        assert_eq!(read_snapshot(&path).unwrap(), snapshot);
        // No stray temp file remains after the atomic write.
        assert_eq!(
            fs::read_dir(&dir).unwrap().count(),
            1,
            "only the snapshot itself"
        );
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert!(read_snapshot(&path).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_roundtrip_and_corruption_detection() {
        let dir = test_dir("manifest");
        let path = dir.join(MANIFEST_FILE);
        let manifest = SpillManifest {
            entries: vec![ManifestEntry {
                table: "mixed".to_string(),
                partition: 4,
                table_version: 2,
                file: "mixed-0123456789abcdef_4.spill".to_string(),
                file_bytes: 8192,
                checksum: 77,
            }],
        };
        write_manifest(&path, &manifest).unwrap();
        assert_eq!(read_manifest(&path).unwrap(), manifest);
        let mut bytes = fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 3);
        fs::write(&path, &bytes).unwrap();
        assert!(read_manifest(&path).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn table_record_meta_roundtrip() {
        let record = sample_table("orders", 5);
        let meta = record.into_meta(Arc::new(|_| Vec::new()), 4);
        assert_eq!(meta.name, "orders");
        assert_eq!(meta.num_partitions, 6);
        assert_eq!(meta.version(), 5);
        assert!(meta.is_cached());
        assert_eq!(meta.distribute_by, Some(0));
        assert_eq!(meta.copartitioned_with.as_deref(), Some("peer"));
        assert_eq!(meta.row_count_hint, Some(480));
        assert_eq!(TableRecord::from_meta(&meta), record);
    }
}
