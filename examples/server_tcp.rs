//! Serving over TCP: the wire-protocol frontend end to end.
//!
//! One `SharkServer` serves a TPC-H-style memstore over the SHRKNET
//! framed protocol (`docs/wire-protocol.md`): concurrent `shark-client`
//! connections fire repeated dashboard queries (exercising the shared
//! plan cache), a top-k SELECT streams batch-by-batch with client-paced
//! backpressure, a prepared statement is registered once and re-executed,
//! a client cancels an expensive scan mid-stream, another disconnects
//! without goodbye — and the serving layer must release that abandoned
//! query's admission permit, memstore pins and prefetch grant on its own.
//! Finally an idle connection sits past its rate-class deadline and the
//! reaper force-closes it.
//!
//! The example asserts the interesting gauges itself and ends with the
//! machine-readable `SERVER_REPORT_JSON:` line the CI `net-smoke` job
//! checks with `jq`: plan-cache hits observed over the wire, bytes
//! actually sent, at least one reaped connection, and zero connections
//! (and zero running queries / in-use prefetch slots) left at shutdown.
//!
//! Run with: `cargo run --release -p shark-examples --example server_tcp`

use std::net::TcpStream;
use std::time::{Duration, Instant};

use shark_client::SharkClient;
use shark_datagen::tpch::{self, TpchConfig};
use shark_server::net::frame::{self, Frame};
use shark_server::{NetConfig, RateClass, ServerConfig, SharkServer};
use shark_sql::TableMeta;

const CLIENTS: usize = 6;
const ROUNDS: usize = 4;
const TOKEN: &str = "warehouse-token";

fn register_tables(server: &SharkServer, cfg: &TpchConfig, partitions: usize) {
    let nodes = server.context().config().cluster.num_nodes;
    let c1 = cfg.clone();
    server.register_table(
        TableMeta::new("lineitem", tpch::lineitem_schema(), partitions, move |p| {
            tpch::lineitem_partition(&c1, partitions, p)
        })
        .with_row_count_hint(cfg.lineitem_rows as u64)
        .with_cache(nodes),
    );
    let orders_parts = partitions.clamp(1, 16);
    let c2 = cfg.clone();
    server.register_table(
        TableMeta::new("orders", tpch::orders_schema(), orders_parts, move |p| {
            tpch::orders_partition(&c2, orders_parts, p)
        })
        .with_row_count_hint(cfg.orders_rows as u64)
        .with_cache(nodes),
    );
}

/// Wait (bounded) for an asynchronous server-side condition.
fn await_condition(what: &str, mut check: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !check() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn main() -> shark_common::Result<()> {
    let server = SharkServer::new(ServerConfig::default().with_admission(4, 64));
    register_tables(&server, &TpchConfig::tiny(), 8);
    server.load_table("lineitem")?;
    server.load_table("orders")?;

    // Short idle deadlines so the reaper close-up below fits in a smoke
    // test; the "dashboards" tenant gets small result batches (paced
    // harder) and the default class a roomier stream.
    let net = server.serve(
        NetConfig::default()
            .with_auth_token(TOKEN)
            .with_reap_tick(Duration::from_millis(25))
            .with_idle_timeout(Duration::from_millis(400))
            .with_max_batch_rows(256)
            .with_rate_class(RateClass {
                name: "dashboards".to_string(),
                stream_prefetch: 1,
                max_batch_rows: 64,
                idle_timeout: Duration::from_millis(400),
            }),
    )?;
    let addr = net.local_addr();
    println!("serving on {addr}");

    // --- Auth: a wrong token is rejected before any session exists. ------
    assert!(
        SharkClient::connect(addr, "wrong-token", "").is_err(),
        "bad token must be rejected"
    );

    // --- Concurrent dashboard clients over one statement mix. ------------
    // Every client runs the same texts, so after each statement's first
    // planning the shared cache serves the rest of the fleet.
    let queries = [
        "SELECT l_shipmode, COUNT(*) FROM lineitem GROUP BY l_shipmode",
        "SELECT COUNT(*) FROM orders WHERE o_totalprice > 1000",
        "SELECT SUM(l_extendedprice) FROM lineitem WHERE l_quantity > 10",
    ];
    let mut workers = Vec::new();
    for c in 0..CLIENTS {
        workers.push(std::thread::spawn(move || {
            let mut client = SharkClient::connect(addr, TOKEN, "dashboards").expect("connect");
            let mut rows = 0usize;
            let mut wire_hits = 0usize;
            for round in 0..ROUNDS {
                for q in 0..queries.len() {
                    let text = queries[(c + round + q) % queries.len()];
                    let result = client.query(text).expect("query");
                    rows += result.rows.len();
                    wire_hits += usize::from(result.plan_cache_hit);
                }
            }
            client.close().expect("close");
            (rows, wire_hits)
        }));
    }
    let mut total_rows = 0;
    let mut wire_hits = 0;
    for w in workers {
        let (rows, hits) = w.join().expect("client panicked");
        total_rows += rows;
        wire_hits += hits;
    }
    println!(
        "{CLIENTS} clients x {ROUNDS} rounds: {total_rows} rows, \
         {wire_hits} wire-observed plan-cache hits"
    );
    assert!(wire_hits > 0, "repeated statements must hit the plan cache");

    // --- Streamed top-k with client-paced batches. ------------------------
    let mut client = SharkClient::connect(addr, TOKEN, "dashboards")?;
    let mut stream =
        client.query_stream("SELECT l_orderkey FROM lineitem ORDER BY l_orderkey LIMIT 100")?;
    let mut batches = 0;
    let mut streamed_rows = 0;
    while let Some(batch) = stream.next_batch()? {
        batches += 1;
        streamed_rows += batch.len();
    }
    let summary = stream.finish()?;
    println!(
        "top-k stream: {streamed_rows} rows in {batches} batches over {} partitions",
        summary.partitions
    );
    assert_eq!(streamed_rows as u64, summary.rows);
    assert!(batches >= 2, "64-row batches must split a 100-row result");

    // --- Prepared statement: parse once, execute repeatedly. -------------
    let prepared = client.prepare(
        "SELECT o_custkey, SUM(o_totalprice) FROM orders GROUP BY o_custkey \
                        ORDER BY SUM(o_totalprice) DESC LIMIT 5",
    )?;
    let first = client.execute(prepared)?;
    let second = client.execute(prepared)?;
    let third = client.execute(prepared)?;
    println!(
        "prepared statement {} (fingerprint {:#x}): {} rows; cache hit on re-execute: {}",
        prepared.statement_id,
        prepared.fingerprint,
        first.rows.len(),
        second.plan_cache_hit && third.plan_cache_hit,
    );
    assert!(
        second.plan_cache_hit && third.plan_cache_hit,
        "re-executing a prepared statement must reuse its cached plan"
    );

    // --- Cancel mid-stream: the query stops, the connection survives. ----
    let mut stream = client.query_stream("SELECT l_orderkey, l_shipmode FROM lineitem")?;
    let _ = stream.next_batch()?;
    stream.cancel()?;
    let summary = stream.finish()?;
    assert!(summary.cancelled, "server must acknowledge the cancel");
    let after_cancel = client.query("SELECT COUNT(*) FROM orders")?;
    println!(
        "cancelled scan after {} rows; connection stayed usable ({} row answer after)",
        summary.rows,
        after_cancel.rows.len()
    );
    client.close()?;

    // --- Forced disconnect mid-query must leak nothing. ------------------
    // Drive the wire by hand: handshake, fire a full-scan Query, read only
    // the schema frame, then drop the socket without Close or Cancel. The
    // server-side cursor must release its admission permit, pins and
    // prefetch grant on its own.
    {
        let mut raw = TcpStream::connect(addr).expect("connect");
        frame::write_frame(
            &mut raw,
            &Frame::Hello {
                token: TOKEN.to_string(),
                tenant: "dashboards".to_string(),
            },
        )
        .expect("hello");
        let (reply, _) = frame::read_frame(&mut raw).expect("hello reply");
        assert!(matches!(reply, Frame::HelloOk { .. }));
        frame::write_frame(
            &mut raw,
            &Frame::Query {
                sql: "SELECT l_orderkey, l_shipmode FROM lineitem".to_string(),
            },
        )
        .expect("query");
        let (schema, _) = frame::read_frame(&mut raw).expect("schema frame");
        assert!(matches!(schema, Frame::ResultSchema { .. }));
        // Vanish mid-stream.
        drop(raw);
    }
    await_condition("abandoned query to release its permit", || {
        server.running_queries() == 0
    });
    await_condition("abandoned query to return its prefetch grant", || {
        server.prefetch_in_use() == 0
    });
    println!("abandoned mid-query connection released permit, pins and prefetch");

    // --- Idle reaping on the deadline wheel. ------------------------------
    let idler = SharkClient::connect(addr, TOKEN, "dashboards")?;
    await_condition("the reaper to close the idle connection", || {
        server.report().connections_reaped >= 1
    });
    drop(idler);
    println!("idle connection reaped by deadline wheel");

    // --- Orderly shutdown: nothing may stay open. -------------------------
    let mut net = net;
    net.shutdown();
    let report = server.report();
    assert!(report.connections_opened > 0);
    assert_eq!(
        report.connections_active, 0,
        "no connection may survive shutdown"
    );
    assert!(report.connections_reaped >= 1);
    assert!(report.wire_bytes_sent > 0);
    assert!(report.plan_cache_hits > 0);
    assert!(report.net_cancels >= 1);
    assert!(report.net_auth_failures >= 1);
    assert_eq!(server.running_queries(), 0);
    assert_eq!(server.prefetch_in_use(), 0);

    println!("\n--- server report ---");
    print!("{}", report.render());
    // Machine-readable copy on one line, for CI smoke-test assertions.
    println!("SERVER_REPORT_JSON: {}", report.to_json());
    Ok(())
}
