//! Cross-crate integration tests: the full SQL + ML pipeline over the
//! simulated cluster, exercising the paper's main claims end to end.

use shark_core::datasets::{register_pavlo, register_tpch, register_warehouse};
use shark_core::{ExecConfig, SharkConfig, SharkContext};
use shark_datagen::pavlo::PavloConfig;
use shark_datagen::tpch::TpchConfig;
use shark_datagen::warehouse::WarehouseConfig;
use shark_ml::LogisticRegression;

fn shark_with_pavlo(exec: ExecConfig, cached: bool) -> SharkContext {
    let shark = SharkContext::new(
        SharkConfig {
            cluster: shark_core::ClusterConfig::small(8, 2),
            default_partitions: 8,
            sim_scale: 10_000.0,
            ..SharkConfig::default()
        }
        .with_exec(exec),
    );
    register_pavlo(&shark, &PavloConfig::tiny(), 8, cached).unwrap();
    if cached {
        shark.load_table("rankings").unwrap();
        shark.load_table("uservisits").unwrap();
    }
    shark
}

#[test]
fn pavlo_queries_agree_between_shark_and_hive_modes() {
    let shark = shark_with_pavlo(ExecConfig::shark(), true);
    let hive = {
        let s = SharkContext::new(SharkConfig {
            cluster: shark_core::ClusterConfig::small(8, 2)
                .with_profile(shark_core::EngineProfile::hadoop()),
            default_partitions: 8,
            sim_scale: 10_000.0,
            exec: ExecConfig::hive(),
            ..SharkConfig::default()
        });
        register_pavlo(&s, &PavloConfig::tiny(), 8, false).unwrap();
        s
    };
    for sql in [
        "SELECT COUNT(*) FROM rankings WHERE pageRank > 300",
        "SELECT SUBSTR(sourceIP, 1, 7), COUNT(*) FROM uservisits GROUP BY SUBSTR(sourceIP, 1, 7) ORDER BY 1",
        "SELECT sourceIP, COUNT(*) AS visits FROM rankings R, uservisits UV \
         WHERE R.pageURL = UV.destURL GROUP BY UV.sourceIP ORDER BY visits DESC, sourceIP LIMIT 10",
    ] {
        let a = shark.sql(sql).unwrap();
        let b = hive.sql(sql).unwrap();
        assert_eq!(a.rows, b.rows, "results must agree for: {sql}");
        // The engines agree on answers but not on (simulated) speed.
        assert!(b.sim_seconds > a.sim_seconds, "hive should be slower: {sql}");
    }
}

#[test]
fn shark_is_dramatically_faster_than_hive_on_cached_aggregations() {
    // The headline claim: up to ~100x on warehouse-style queries.
    let shark = shark_with_pavlo(ExecConfig::shark(), true);
    let hive = {
        let s = SharkContext::new(SharkConfig::paper_hive().with_sim_scale(10_000.0));
        register_pavlo(&s, &PavloConfig::tiny(), 8, false).unwrap();
        s
    };
    let shark_full = SharkContext::new(SharkConfig::paper_shark().with_sim_scale(10_000.0));
    register_pavlo(&shark_full, &PavloConfig::tiny(), 8, true).unwrap();
    shark_full.load_table("rankings").unwrap();

    let sql = "SELECT COUNT(*) FROM rankings WHERE pageRank > 300";
    shark_full.reset_simulation();
    let fast = shark_full.sql(sql).unwrap();
    hive.reset_simulation();
    let slow = hive.sql(sql).unwrap();
    assert_eq!(fast.rows, slow.rows);
    let speedup = slow.sim_seconds / fast.sim_seconds;
    assert!(
        speedup > 10.0,
        "expected an order-of-magnitude speedup, got {speedup:.1}x"
    );
    drop(shark);
}

#[test]
fn pde_join_selection_beats_static_plan() {
    let tpch = TpchConfig {
        supplier_rows: 5_000,
        lineitem_rows: 20_000,
        ..TpchConfig::tiny()
    };
    let build = |exec: ExecConfig| {
        let mut shark = SharkContext::new(
            SharkConfig::paper_shark()
                .with_sim_scale(50_000.0)
                .with_exec(exec),
        );
        shark.register_udf("is_special", |args| {
            shark_common::Value::Bool(
                args[0]
                    .as_str()
                    .map(|s| s.contains("SPECIAL"))
                    .unwrap_or(false),
            )
        });
        register_tpch(&shark, &tpch, 16, true).unwrap();
        shark.load_table("lineitem").unwrap();
        shark.load_table("supplier").unwrap();
        shark
    };
    let sql = "SELECT l_orderkey, s_name FROM lineitem l JOIN supplier s \
               ON l.l_suppkey = s.s_suppkey WHERE is_special(s.s_address)";
    let adaptive = build(ExecConfig::shark());
    adaptive.reset_simulation();
    let a = adaptive.sql(sql).unwrap();
    let static_plan = build(ExecConfig::shark_static());
    static_plan.reset_simulation();
    let s = static_plan.sql(sql).unwrap();
    assert_eq!(a.rows.len(), s.rows.len(), "same join result");
    assert!(
        a.notes.iter().any(|n| n.contains("map join")),
        "PDE should have chosen a map join: {:?}",
        a.notes
    );
    assert!(
        a.sim_seconds < s.sim_seconds,
        "adaptive {} should beat static {}",
        a.sim_seconds,
        s.sim_seconds
    );
}

#[test]
fn map_pruning_reduces_scanned_partitions_and_preserves_answers() {
    let shark = SharkContext::new(SharkConfig::default());
    register_warehouse(&shark, &WarehouseConfig::tiny(), true).unwrap();
    shark.load_table("sessions").unwrap();
    let pruned = shark
        .sql("SELECT COUNT(*) FROM sessions WHERE day = 15001")
        .unwrap();
    assert!(pruned.notes.iter().any(|n| n.contains("map pruning")));

    // Same answer when scanning everything from "disk" (no stats, no pruning).
    let disk = SharkContext::new(SharkConfig::default().with_exec(ExecConfig::shark_disk()));
    register_warehouse(&disk, &WarehouseConfig::tiny(), false).unwrap();
    let full = disk
        .sql("SELECT COUNT(*) FROM sessions WHERE day = 15001")
        .unwrap();
    assert_eq!(pruned.rows, full.rows);
}

#[test]
fn mid_query_style_failure_recovery_preserves_results() {
    let shark = SharkContext::new(SharkConfig {
        cluster: shark_core::ClusterConfig::small(10, 2),
        default_partitions: 20,
        ..SharkConfig::default()
    });
    register_tpch(&shark, &TpchConfig::tiny(), 20, true).unwrap();
    shark.load_table("lineitem").unwrap();
    let sql =
        "SELECT l_shipmode, COUNT(*), SUM(l_quantity) FROM lineitem GROUP BY l_shipmode ORDER BY 1";
    let before = shark.sql(sql).unwrap();
    let lost = shark.fail_node(3);
    assert!(lost > 0);
    let after = shark.sql(sql).unwrap();
    assert_eq!(before.rows, after.rows);
    // Subsequent queries run against the recovered cache.
    let again = shark.sql(sql).unwrap();
    assert_eq!(before.rows, again.rows);
}

#[test]
fn sql_and_ml_share_the_same_engine_and_cache() {
    let shark = SharkContext::new(SharkConfig::default());
    shark_core::datasets::register_ml_points(&shark, &shark_datagen::ml::MlConfig::tiny(), 8, true)
        .unwrap();
    shark.load_table("points").unwrap();
    let table = shark.sql_to_rdd("SELECT * FROM points").unwrap();
    let dims = shark_datagen::ml::MlConfig::tiny().dims;
    let points = table
        .rdd
        .map(move |row| {
            let label = row.get_float(0).unwrap_or(0.0);
            let features: Vec<f64> = (1..=dims)
                .map(|i| row.get_float(i).unwrap_or(0.0))
                .collect();
            (features, label)
        })
        .cache();
    let (model, report) = LogisticRegression {
        iterations: 8,
        learning_rate: 1.0,
        seed: 2,
    }
    .train(&points)
    .unwrap();
    assert_eq!(report.iterations(), 8);
    let acc = LogisticRegression::accuracy(&model, &points).unwrap();
    assert!(acc > 0.8, "accuracy {acc}");
    // Kill a node and train again: lineage recovery also covers the ML stage.
    shark.fail_node(1);
    let (model2, _) = LogisticRegression {
        iterations: 4,
        learning_rate: 1.0,
        seed: 2,
    }
    .train(&points)
    .unwrap();
    assert_eq!(model2.weights.len(), model.weights.len());
}
