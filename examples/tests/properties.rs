//! Property-based tests over the core data structures and invariants:
//! columnar round-trips, partitioner determinism, SQL/RDD aggregation
//! equivalence, PDE bin-packing coverage, and expression evaluation laws.

use proptest::prelude::*;
use shark_columnar::ColumnarPartition;
use shark_common::hash::hash_partition;
use shark_common::{DataType, Row, Schema, Value};
use shark_rdd::RddContext;
use shark_sql::coalesce_buckets;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        (-1e12f64..1e12f64).prop_map(Value::Float),
        any::<bool>().prop_map(Value::Bool),
        (-30000i32..30000).prop_map(Value::Date),
        "[a-zA-Z0-9 ]{0,12}".prop_map(|s| Value::str(s)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn columnar_roundtrip_preserves_rows(
        ints in proptest::collection::vec(-1000i64..1000, 1..200),
        strs in proptest::collection::vec("[a-z]{0,6}", 1..200),
    ) {
        let n = ints.len().min(strs.len());
        let schema = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Str)]);
        let rows: Vec<Row> = (0..n)
            .map(|i| Row::new(vec![Value::Int(ints[i]), Value::str(&strs[i])]))
            .collect();
        let part = ColumnarPartition::from_rows(&schema, &rows);
        prop_assert_eq!(part.to_rows(), rows);
        prop_assert!(part.memory_bytes() > 0);
    }

    #[test]
    fn value_ordering_is_total_and_consistent_with_hashing(
        a in arb_value(), b in arb_value()
    ) {
        use std::cmp::Ordering;
        // Antisymmetry of the total ordering.
        let ab = a.total_cmp(&b);
        let ba = b.total_cmp(&a);
        prop_assert_eq!(ab, ba.reverse());
        // Equal values hash identically.
        if ab == Ordering::Equal {
            prop_assert_eq!(
                shark_common::hash::fx_hash(&a),
                shark_common::hash::fx_hash(&b)
            );
        }
    }

    #[test]
    fn hash_partitioning_is_deterministic_and_in_range(
        keys in proptest::collection::vec(any::<i64>(), 1..500),
        parts in 1usize..64,
    ) {
        for k in &keys {
            let p1 = hash_partition(k, parts);
            let p2 = hash_partition(k, parts);
            prop_assert_eq!(p1, p2);
            prop_assert!(p1 < parts);
        }
    }

    #[test]
    fn coalesce_assignment_is_a_partition_of_all_buckets(
        sizes in proptest::collection::vec(0u64..100_000, 1..300),
        target in 1u64..1_000_000,
        max_parts in 1usize..64,
    ) {
        let assignment = coalesce_buckets(&sizes, target, max_parts);
        let mut seen: Vec<usize> = assignment.iter().flatten().copied().collect();
        seen.sort_unstable();
        let expected: Vec<usize> = (0..sizes.len()).collect();
        prop_assert_eq!(seen, expected);
        prop_assert!(assignment.len() <= max_parts.max(1));
    }

    #[test]
    fn rdd_reduce_by_key_matches_sequential_group_sum(
        values in proptest::collection::vec((0i64..20, -100i64..100), 1..400),
        partitions in 1usize..8,
    ) {
        let ctx = RddContext::local();
        let rdd = ctx.parallelize(values.clone(), partitions);
        let mut distributed = rdd.reduce_by_key(4, |a, b| a + b).collect().unwrap();
        distributed.sort();
        let mut expected: std::collections::BTreeMap<i64, i64> = Default::default();
        for (k, v) in values {
            *expected.entry(k).or_insert(0) += v;
        }
        let expected: Vec<(i64, i64)> = expected.into_iter().collect();
        prop_assert_eq!(distributed, expected);
    }

    #[test]
    fn sql_count_matches_generated_row_count(
        rows_per_partition in 1usize..50,
        partitions in 1usize..6,
    ) {
        let shark = shark_core::SharkContext::local();
        shark.register_table(shark_sql::TableMeta::new(
            "t",
            Schema::from_pairs(&[("x", DataType::Int)]),
            partitions,
            move |p| (0..rows_per_partition).map(|i| Row::new(vec![Value::Int((p * 1000 + i) as i64)])).collect(),
        ));
        let r = shark.sql("SELECT COUNT(*) FROM t").unwrap();
        prop_assert_eq!(
            r.rows[0].get_int(0).unwrap(),
            (rows_per_partition * partitions) as i64
        );
    }
}
