//! Randomized property tests over the core data structures and invariants:
//! columnar round-trips, partitioner determinism, SQL/RDD aggregation
//! equivalence, PDE bin-packing coverage, and value-ordering laws.
//!
//! Originally written against `proptest`; the offline build vendors only a
//! small `rand` stand-in, so these are driven by an explicit seeded-case
//! loop instead. Each property still runs against 64 random cases and every
//! failure message carries the seed needed to replay it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shark_columnar::ColumnarPartition;
use shark_common::hash::hash_partition;
use shark_common::{DataType, Row, Schema, Value};
use shark_rdd::RddContext;
use shark_sql::coalesce_buckets;

const CASES: u64 = 64;

/// Run `property` against `CASES` independently seeded RNGs.
fn check(name: &str, property: impl Fn(&mut StdRng)) {
    for case in 0..CASES {
        let seed = 0x5AA5_0000 + case;
        let mut rng = StdRng::seed_from_u64(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| property(&mut rng)));
        if result.is_err() {
            panic!("property '{name}' failed for seed {seed:#x}");
        }
    }
}

fn arb_string(rng: &mut StdRng, alphabet: &[u8], max_len: usize) -> String {
    let len = rng.gen_range(0..=max_len);
    (0..len)
        .map(|_| alphabet[rng.gen_range(0..alphabet.len())] as char)
        .collect()
}

fn arb_value(rng: &mut StdRng) -> Value {
    match rng.gen_range(0..6u32) {
        0 => Value::Null,
        1 => Value::Int(rng.gen()),
        2 => Value::Float(rng.gen_range(-1e12f64..1e12)),
        3 => Value::Bool(rng.gen()),
        4 => Value::Date(rng.gen_range(-30000i32..30000)),
        _ => Value::str(arb_string(
            rng,
            b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ",
            12,
        )),
    }
}

#[test]
fn columnar_roundtrip_preserves_rows() {
    check("columnar_roundtrip", |rng| {
        let n = rng.gen_range(1..200usize);
        let schema = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Str)]);
        let rows: Vec<Row> = (0..n)
            .map(|_| {
                Row::new(vec![
                    Value::Int(rng.gen_range(-1000i64..1000)),
                    Value::str(arb_string(rng, b"abcdefghijklmnopqrstuvwxyz", 6)),
                ])
            })
            .collect();
        let part = ColumnarPartition::from_rows(&schema, &rows);
        assert_eq!(part.to_rows(), rows);
        assert!(part.memory_bytes() > 0);
    });
}

#[test]
fn value_ordering_is_total_and_consistent_with_hashing() {
    check("value_ordering", |rng| {
        use std::cmp::Ordering;
        let a = arb_value(rng);
        let b = arb_value(rng);
        // Antisymmetry of the total ordering.
        let ab = a.total_cmp(&b);
        let ba = b.total_cmp(&a);
        assert_eq!(ab, ba.reverse(), "a={a:?} b={b:?}");
        // Equal values hash identically.
        if ab == Ordering::Equal {
            assert_eq!(
                shark_common::hash::fx_hash(&a),
                shark_common::hash::fx_hash(&b),
                "a={a:?} b={b:?}"
            );
        }
    });
}

#[test]
fn hash_partitioning_is_deterministic_and_in_range() {
    check("hash_partitioning", |rng| {
        let parts = rng.gen_range(1..64usize);
        for _ in 0..rng.gen_range(1..500usize) {
            let k: i64 = rng.gen();
            let p1 = hash_partition(&k, parts);
            let p2 = hash_partition(&k, parts);
            assert_eq!(p1, p2);
            assert!(p1 < parts);
        }
    });
}

#[test]
fn coalesce_assignment_is_a_partition_of_all_buckets() {
    check("coalesce_partition", |rng| {
        let n = rng.gen_range(1..300usize);
        let sizes: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..100_000)).collect();
        let target = rng.gen_range(1u64..1_000_000);
        let max_parts = rng.gen_range(1..64usize);
        let assignment = coalesce_buckets(&sizes, target, max_parts);
        let mut seen: Vec<usize> = assignment.iter().flatten().copied().collect();
        seen.sort_unstable();
        let expected: Vec<usize> = (0..sizes.len()).collect();
        assert_eq!(seen, expected);
        assert!(assignment.len() <= max_parts.max(1));
    });
}

#[test]
fn rdd_reduce_by_key_matches_sequential_group_sum() {
    check("reduce_by_key", |rng| {
        let n = rng.gen_range(1..400usize);
        let values: Vec<(i64, i64)> = (0..n)
            .map(|_| (rng.gen_range(0i64..20), rng.gen_range(-100i64..100)))
            .collect();
        let partitions = rng.gen_range(1..8usize);
        let ctx = RddContext::local();
        let rdd = ctx.parallelize(values.clone(), partitions);
        let mut distributed = rdd.reduce_by_key(4, |a, b| a + b).collect().unwrap();
        distributed.sort();
        let mut expected: std::collections::BTreeMap<i64, i64> = Default::default();
        for (k, v) in values {
            *expected.entry(k).or_insert(0) += v;
        }
        let expected: Vec<(i64, i64)> = expected.into_iter().collect();
        assert_eq!(distributed, expected);
    });
}

#[test]
fn sql_count_matches_generated_row_count() {
    // The full SQL stack is slower per case, so sample fewer cases.
    for seed in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE + seed);
        let rows_per_partition = rng.gen_range(1..50usize);
        let partitions = rng.gen_range(1..6usize);
        let shark = shark_core::SharkContext::local();
        shark.register_table(shark_sql::TableMeta::new(
            "t",
            Schema::from_pairs(&[("x", DataType::Int)]),
            partitions,
            move |p| {
                (0..rows_per_partition)
                    .map(|i| Row::new(vec![Value::Int((p * 1000 + i) as i64)]))
                    .collect()
            },
        ));
        let r = shark.sql("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(
            r.rows[0].get_int(0).unwrap(),
            (rows_per_partition * partitions) as i64,
            "seed {seed}"
        );
    }
}
