//! Client-library round trip: `shark-client` against an in-process
//! `SharkServer` served over real TCP. Complements the raw-socket protocol
//! tests in `crates/server/tests/net_protocol.rs` — here both ends use the
//! shipped code paths, end to end.

use shark_client::SharkClient;
use shark_common::{row, DataType, Schema, Value};
use shark_server::{NetConfig, RateClass, ServerConfig, SharkServer};
use shark_sql::TableMeta;
use std::time::Duration;

const PARTITIONS: usize = 4;
const ROWS_PER_PARTITION: usize = 100;

fn serve() -> (SharkServer, shark_server::NetServer) {
    let server = SharkServer::new(ServerConfig::default());
    let schema = Schema::from_pairs(&[("k", DataType::Int), ("grp", DataType::Str)]);
    server.register_table(
        TableMeta::new("t0", schema, PARTITIONS, move |p| {
            (0..ROWS_PER_PARTITION)
                .map(|i| row![(p * ROWS_PER_PARTITION + i) as i64, ["x", "y"][i % 2]])
                .collect()
        })
        .with_cache(PARTITIONS)
        .with_row_count_hint((PARTITIONS * ROWS_PER_PARTITION) as u64),
    );
    server.load_table("t0").unwrap();
    let net = server
        .serve(
            NetConfig::default()
                .with_rate_class(RateClass {
                    name: "drip".to_string(),
                    stream_prefetch: 1,
                    max_batch_rows: 8,
                    idle_timeout: Duration::from_secs(60),
                })
                .with_max_batch_rows(64),
        )
        .unwrap();
    (server, net)
}

#[test]
fn wire_results_match_in_process_results() {
    let (server, mut net) = serve();
    let mut client = SharkClient::connect(net.local_addr(), "", "").unwrap();
    let session = server.session();

    for query in [
        "SELECT k, grp FROM t0 WHERE k < 150 ORDER BY k",
        "SELECT grp, COUNT(*) FROM t0 GROUP BY grp ORDER BY grp",
        "SELECT k FROM t0 ORDER BY k DESC LIMIT 13",
    ] {
        let local = session.sql(query).unwrap().result;
        let wire = client.query(query).unwrap();
        assert_eq!(wire.schema, local.schema, "schema mismatch: {query}");
        assert_eq!(wire.rows, local.rows, "row mismatch: {query}");
    }
    client.close().unwrap();
    net.shutdown();
}

#[test]
fn streamed_batches_respect_the_rate_class_and_sum_to_the_result() {
    let (server, mut net) = serve();
    // The "drip" tenant is capped at 8-row batches.
    let mut client = SharkClient::connect(net.local_addr(), "", "drip").unwrap();
    let mut stream = client.query_stream("SELECT k FROM t0 ORDER BY k").unwrap();
    let mut rows = Vec::new();
    let mut max_batch = 0usize;
    while let Some(batch) = stream.next_batch().unwrap() {
        max_batch = max_batch.max(batch.len());
        rows.extend(batch);
    }
    let summary = stream.finish().unwrap();
    assert!(
        max_batch <= 8,
        "rate class must cap batches, saw {max_batch}"
    );
    assert_eq!(rows.len() as u64, summary.rows);
    assert_eq!(rows.len(), PARTITIONS * ROWS_PER_PARTITION);
    assert_eq!(rows[0].values()[0], Value::Int(0));
    client.close().unwrap();
    net.shutdown();
    drop(server);
}

#[test]
fn prepared_statements_reuse_plans_and_survive_errors() {
    let (server, mut net) = serve();
    let mut client = SharkClient::connect(net.local_addr(), "", "").unwrap();

    // A parse error is an Error frame, not a hangup.
    assert!(client.prepare("SELEC nope").is_err());
    assert!(client.query("SELECT COUNT(*) FROM no_such_table").is_err());

    // The connection is still usable afterwards.
    let prepared = client
        .prepare("SELECT grp, COUNT(*) FROM t0 GROUP BY grp ORDER BY grp")
        .unwrap();
    let first = client.execute(prepared).unwrap();
    let second = client.execute(prepared).unwrap();
    assert_eq!(first.rows, second.rows);
    assert!(
        second.plan_cache_hit,
        "re-execution must hit the plan cache"
    );
    assert!(server.report().plan_cache_hits >= 1);
    client.close().unwrap();
    net.shutdown();
}
