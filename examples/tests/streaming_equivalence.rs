//! Equivalence suite for pipelined/top-k streaming: across a randomized
//! grid of (partition count × prefetch depth × LIMIT/ORDER BY shapes), the
//! streaming path must return **byte-identical** rows to the blocking
//! `sql()` path — including the order of rows with duplicate sort keys,
//! which exercises the merge's stable tie-breaking and the soundness of the
//! statistics-driven partition skipping.
//!
//! Driven by the vendored seeded-`rand` harness (style of
//! `examples/tests/properties.rs`): every failure message carries the seed
//! that replays it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shark_common::{DataType, Row, Schema, Value};
use shark_rdd::{RddConfig, RddContext};
use shark_sql::{ExecConfig, SqlSession, TableMeta};

const PREFETCH_DEPTHS: [usize; 4] = [0, 1, 2, 8];

/// Build a session over a randomly-shaped cached table. Values are drawn
/// from a small domain so duplicate sort keys appear within and across
/// partitions; `correlated` makes the sort key increase with the partition
/// index so partition statistics can prove top-k skipping.
fn random_session(rng: &mut StdRng, correlated: bool) -> (SqlSession, usize, usize) {
    let partitions = rng.gen_range(1..9usize);
    let rows_per_partition = rng.gen_range(1..60usize);
    let schema = Schema::from_pairs(&[
        ("k", DataType::Int),
        ("grp", DataType::Str),
        ("amount", DataType::Float),
    ]);
    // Pre-generate deterministic partition contents.
    let data: Vec<Vec<Row>> = (0..partitions)
        .map(|p| {
            (0..rows_per_partition)
                .map(|i| {
                    let key = if correlated {
                        (p * rows_per_partition + i) as i64
                    } else {
                        rng.gen_range(0i64..20)
                    };
                    Row::new(vec![
                        Value::Int(key),
                        Value::str(["alpha", "beta", "gamma"][rng.gen_range(0..3usize)]),
                        Value::Float(rng.gen_range(0u32..50) as f64 * 0.5),
                    ])
                })
                .collect()
        })
        .collect();
    let data = std::sync::Arc::new(data);
    let session = SqlSession::new(RddContext::new(RddConfig::default()), ExecConfig::shark());
    session.register_table(
        TableMeta::new("t", schema, partitions, move |p| data[p].clone())
            .with_cache(4)
            .with_row_count_hint((partitions * rows_per_partition) as u64),
    );
    session.load_table("t").unwrap();
    (session, partitions, rows_per_partition)
}

/// Drain a stream with a given prefetch depth and batch size.
fn drain(session: &SqlSession, query: &str, prefetch: usize, batch: usize) -> Vec<Row> {
    let mut stream = session
        .sql_stream(query)
        .unwrap()
        .with_prefetch(prefetch)
        .with_batch_size(batch);
    let mut rows = Vec::new();
    while let Some(b) = stream.next_batch().unwrap() {
        assert!(!b.is_empty(), "streams never deliver empty batches");
        rows.extend(b);
    }
    assert!(stream.is_exhausted());
    rows
}

#[test]
fn streamed_rows_are_byte_identical_to_blocking_sql_across_the_grid() {
    for case in 0..24u64 {
        let seed = 0x704B_0000 + case;
        let mut rng = StdRng::seed_from_u64(seed);
        let correlated = rng.gen_range(0..2u32) == 0;
        let (session, partitions, rows_per_partition) = random_session(&mut rng, correlated);
        let total = partitions * rows_per_partition;
        let limit = match rng.gen_range(0..3u32) {
            0 => rng.gen_range(1..=total.min(7)),
            1 => rng.gen_range(1..=total),
            _ => total + rng.gen_range(1..10usize), // larger than the table
        };
        let desc = if rng.gen_range(0..2u32) == 0 {
            " DESC"
        } else {
            ""
        };
        let queries = [
            "SELECT k, grp, amount FROM t".to_string(),
            format!("SELECT k, amount FROM t LIMIT {limit}"),
            format!("SELECT k, grp FROM t ORDER BY k{desc}"),
            format!("SELECT k, grp, amount FROM t ORDER BY k{desc} LIMIT {limit}"),
            format!("SELECT grp, amount FROM t ORDER BY grp, amount{desc} LIMIT {limit}"),
            format!(
                "SELECT k, amount FROM t WHERE amount > 5 ORDER BY amount{desc}, k LIMIT {limit}"
            ),
        ];
        let batch = rng.gen_range(1..40usize);
        for query in &queries {
            let blocking = session.sql(query).unwrap().rows;
            for prefetch in PREFETCH_DEPTHS {
                let streamed = drain(&session, query, prefetch, batch);
                assert_eq!(
                    streamed, blocking,
                    "seed {seed:#x}: '{query}' diverged at prefetch={prefetch} \
                     (partitions={partitions}, rows/part={rows_per_partition}, batch={batch})"
                );
            }
        }
    }
}

#[test]
fn topk_skipping_never_changes_results_on_correlated_tables() {
    // Focused pressure on the statistics-driven skip rule: correlated keys,
    // tiny limits, both directions, duplicate keys at partition boundaries.
    for case in 0..16u64 {
        let seed = 0x704B_1000 + case;
        let mut rng = StdRng::seed_from_u64(seed);
        let partitions = rng.gen_range(2..9usize);
        let rows_per_partition = rng.gen_range(2..40usize);
        // Keys repeat `dup` times so runs of equal keys straddle partition
        // boundaries — the stable-merge tie-break must still match the
        // blocking path's stable driver sort.
        let dup = rng.gen_range(1..5usize);
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("p", DataType::Int)]);
        let rpp = rows_per_partition;
        let session = SqlSession::new(RddContext::new(RddConfig::default()), ExecConfig::shark());
        session.register_table(
            TableMeta::new("t", schema, partitions, move |part| {
                (0..rpp)
                    .map(|i| {
                        Row::new(vec![
                            Value::Int(((part * rpp + i) / dup) as i64),
                            Value::Int(part as i64),
                        ])
                    })
                    .collect()
            })
            .with_cache(4),
        );
        session.load_table("t").unwrap();
        for desc in ["", " DESC"] {
            let limit = rng.gen_range(1..=rows_per_partition * 2);
            let query = format!("SELECT k, p FROM t ORDER BY k{desc} LIMIT {limit}");
            let blocking = session.sql(&query).unwrap().rows;
            for prefetch in PREFETCH_DEPTHS {
                let streamed = drain(&session, &query, prefetch, 16);
                assert_eq!(
                    streamed, blocking,
                    "seed {seed:#x}: '{query}' diverged at prefetch={prefetch}"
                );
            }
        }
    }
}

#[test]
fn streamed_aggregates_and_joins_match_blocking_results() {
    // Multi-stage pipelines (shuffle deps up front) keep their equivalence
    // under prefetching too, including ORDER BY over aggregated output
    // where top-k pushdown must stand down (no single-scan statistics).
    for case in 0..8u64 {
        let seed = 0x704B_2000 + case;
        let mut rng = StdRng::seed_from_u64(seed);
        let (session, _, _) = random_session(&mut rng, false);
        let queries = [
            "SELECT grp, COUNT(*), SUM(amount) FROM t GROUP BY grp ORDER BY grp",
            "SELECT grp, SUM(amount) FROM t GROUP BY grp ORDER BY SUM(amount) DESC LIMIT 2",
            "SELECT a.k, b.amount FROM t a JOIN t b ON a.k = b.k ORDER BY a.k, b.amount LIMIT 9",
        ];
        for query in queries {
            let blocking = session.sql(query).unwrap().rows;
            for prefetch in [0usize, 3] {
                let streamed = drain(&session, query, prefetch, 8);
                assert_eq!(
                    streamed, blocking,
                    "seed {seed:#x}: '{query}' diverged at prefetch={prefetch}"
                );
            }
        }
    }
}
