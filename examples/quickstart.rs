//! Quickstart: register a table, cache it in the memstore, run SQL, and feed
//! a query result into a distributed ML algorithm — the unified workflow the
//! Shark paper advocates (§1, §4).
//!
//! Run with: `cargo run --release -p shark-examples --example quickstart`

use shark_common::{row, DataType, Schema};
use shark_core::{SharkConfig, SharkContext, TableMeta};
use shark_ml::LogisticRegression;

fn main() -> shark_common::Result<()> {
    // A small simulated cluster: 8 nodes x 4 cores, Shark engine profile.
    let mut shark = SharkContext::new(SharkConfig {
        cluster: shark_core::ClusterConfig::small(8, 4),
        default_partitions: 16,
        ..SharkConfig::default()
    });

    // Register a users table backed by a deterministic generator (stands in
    // for files in a warehouse) and cache it in the columnar memstore.
    shark.register_table(
        TableMeta::new(
            "users",
            Schema::from_pairs(&[
                ("uid", DataType::Int),
                ("country", DataType::Str),
                ("age", DataType::Int),
                ("purchases", DataType::Int),
                ("churned", DataType::Bool),
            ]),
            16,
            |p| {
                let countries = ["US", "FR", "JP", "BR"];
                (0..500)
                    .map(|i| {
                        let uid = (p * 500 + i) as i64;
                        let age = 18 + ((uid * 37) % 60);
                        let purchases = (uid * 13) % 40;
                        let churned = purchases < 5;
                        row![uid, countries[(uid % 4) as usize], age, purchases, churned]
                    })
                    .collect()
            },
        )
        .with_cache(8),
    );
    let load = shark.load_table("users")?;
    println!(
        "loaded {} rows into the memstore ({} columnar bytes, {:.2}s simulated)",
        load.rows, load.stored_bytes, load.sim_seconds
    );

    // Plain SQL.
    let result = shark.sql(
        "SELECT country, COUNT(*) AS users, AVG(purchases) AS avg_purchases \
         FROM users WHERE age BETWEEN 21 AND 65 GROUP BY country ORDER BY users DESC",
    )?;
    println!("\n{}", result.schema);
    for r in &result.rows {
        println!("  {}", r.render());
    }
    println!(
        "query took {:.3}s simulated on a {}-node cluster (plan: {})",
        result.sim_seconds,
        shark.config().cluster.num_nodes,
        result.plan
    );

    // SQL + UDF.
    shark.register_udf("is_senior", |args| {
        shark_common::Value::Bool(args[0].as_int().map(|a| a >= 60).unwrap_or(false))
    });
    let seniors = shark.sql("SELECT COUNT(*) FROM users WHERE is_senior(age)")?;
    println!("\nseniors: {}", seniors.rows[0].get(0));

    // sql2rdd + logistic regression (Listing 1 of the paper): predict churn
    // from age and purchase count.
    let table = shark.sql_to_rdd("SELECT age, purchases, churned FROM users")?;
    let points = table
        .rdd
        .map(|r| {
            let age = r.get_float(0).unwrap_or(0.0) / 100.0;
            let purchases = r.get_float(1).unwrap_or(0.0) / 40.0;
            let label = if r.get(2).is_truthy() { 1.0 } else { -1.0 };
            (vec![age, purchases, 1.0], label)
        })
        .cache();
    let (model, report) = LogisticRegression {
        iterations: 10,
        learning_rate: 1.0,
        seed: 42,
    }
    .train(&points)?;
    let accuracy = LogisticRegression::accuracy(&model, &points)?;
    println!(
        "\nlogistic regression: {} iterations, {:.3}s simulated per iteration, accuracy {:.1}%",
        report.iterations(),
        report.mean_iteration_seconds(),
        accuracy * 100.0
    );
    Ok(())
}
