//! Helper crate holding shark-rs examples and integration tests.
