//! The warehouse-server workflow: N concurrent analyst sessions firing SQL
//! at one `SharkServer` that shares a single cached TPC-H-style memstore,
//! under a memory budget deliberately too small for the full working set —
//! so the server's partition-granular LRU policy keeps evicting the coldest
//! cached partitions and lineage keeps recomputing exactly the missing
//! ones, while admission control bounds the in-flight queries. A
//! per-session memory quota sits under the global budget: a session that
//! loads more than its share has its *own* least-recently-used partitions
//! evicted first.
//! LIMIT queries go through the streaming cursor (`sql_stream`), which
//! stops launching partitions once enough rows were delivered and records
//! per-query time-to-first-row. Streaming cursors prefetch: a bounded
//! worker pool (capped by the server's aggregate prefetch budget) executes
//! partitions ahead of the consumer, and ORDER BY + LIMIT queries use
//! top-k pushdown — per-partition bounded heaps plus statistics-ordered
//! partition launches.
//!
//! Run with: `cargo run --release -p shark-examples --example server_concurrent`

use std::sync::{Arc, Barrier};

use shark_datagen::tpch::{self, TpchConfig};
use shark_rdd::RddConfig;
use shark_server::{ServerConfig, SharkServer};
use shark_sql::{ExecConfig, TableMeta};

const SESSIONS: usize = 8;
const ROUNDS: usize = 4;

fn register_tpch(server: &SharkServer, cfg: &TpchConfig, partitions: usize) {
    let nodes = server.context().config().cluster.num_nodes;
    let c1 = cfg.clone();
    server.register_table(
        TableMeta::new("lineitem", tpch::lineitem_schema(), partitions, move |p| {
            tpch::lineitem_partition(&c1, partitions, p)
        })
        .with_row_count_hint(cfg.lineitem_rows as u64)
        .with_cache(nodes),
    );
    let supplier_parts = partitions.clamp(1, 8);
    let c2 = cfg.clone();
    server.register_table(
        TableMeta::new(
            "supplier",
            tpch::supplier_schema(),
            supplier_parts,
            move |p| tpch::supplier_partition(&c2, supplier_parts, p),
        )
        .with_row_count_hint(cfg.supplier_rows as u64)
        .with_cache(nodes),
    );
    let orders_parts = partitions.clamp(1, 16);
    let c3 = cfg.clone();
    server.register_table(
        TableMeta::new("orders", tpch::orders_schema(), orders_parts, move |p| {
            tpch::orders_partition(&c3, orders_parts, p)
        })
        .with_row_count_hint(cfg.orders_rows as u64)
        .with_cache(nodes),
    );
}

fn main() -> shark_common::Result<()> {
    let tpch_cfg = TpchConfig::tiny();
    let partitions = 8;

    // Pass 1: measure the full memstore footprint with no budget.
    let sizing = SharkServer::local();
    register_tpch(&sizing, &tpch_cfg, partitions);
    for table in ["lineitem", "supplier", "orders"] {
        sizing.load_table(table)?;
    }
    let full_bytes = sizing.catalog().memstore_bytes();
    let orders_bytes = sizing
        .catalog()
        .get("orders")?
        .cached
        .as_ref()
        .map(|m| m.memory_bytes())
        .unwrap_or(0);

    // Pass 2: the real server, with room for roughly 85% of that working
    // set — lineitem alone fits, but not together with either of the other
    // tables, so the LRU policy keeps displacing somebody.
    let budget = full_bytes * 17 / 20;
    println!("full working set: {full_bytes} columnar bytes; server budget: {budget} bytes");
    let server = SharkServer::new(ServerConfig {
        rdd: RddConfig::default(),
        exec: ExecConfig::shark(),
        memory_budget_bytes: budget,
        // Each session may own at most an orders-table's worth of loaded
        // data; going over evicts that session's own LRU partitions first.
        session_mem_quota_bytes: orders_bytes.max(1),
        max_concurrent_queries: 4,
        max_queued_queries: 128,
        max_total_prefetch: 8,
        executor_threads: None,
        // Memory-only, as the paper runs it: pressure drops partitions to
        // lineage recompute. Point spill_dir at a directory to demote them
        // to disk instead (see the README's "Storage tiers" section).
        spill_dir: None,
        spill_budget_bytes: u64::MAX,
        wal_snapshot_every_records: 256,
        plan_cache_capacity: 128,
    });
    register_tpch(&server, &tpch_cfg, partitions);

    // Quota close-up (before the workload claims table ownership): one
    // greedy session loads orders — filling its quota exactly — then
    // supplier on top, pushing it over, so the quota layer evicts that
    // session's own LRU partitions while the rest of the store stays put.
    {
        let greedy = server.session();
        greedy.load_table("orders")?;
        let before = greedy.resident_bytes();
        greedy.load_table("supplier")?;
        println!(
            "quota: session {} owned {before} bytes after loading orders, \
             {} after supplier (quota {}; own LRU partitions evicted to fit)",
            greedy.id(),
            greedy.resident_bytes(),
            orders_bytes,
        );
    }

    let queries = [
        "SELECT l_shipmode, COUNT(*) FROM lineitem GROUP BY l_shipmode",
        "SELECT COUNT(*) FROM supplier WHERE s_acctbal > 0",
        "SELECT o_custkey, SUM(o_totalprice) FROM orders GROUP BY o_custkey \
         ORDER BY SUM(o_totalprice) DESC LIMIT 5",
        "SELECT SUM(l_extendedprice) FROM lineitem WHERE l_quantity > 10",
    ];

    let barrier = Arc::new(Barrier::new(SESSIONS));
    let mut workers = Vec::new();
    for s in 0..SESSIONS {
        let mut session = server.session();
        // Ask for 2 partitions of prefetch per cursor; the server clamps the
        // aggregate under its prefetch budget.
        session.set_stream_prefetch(2);
        let barrier = barrier.clone();
        workers.push(std::thread::spawn(move || {
            barrier.wait();
            let mut rows = 0usize;
            for round in 0..ROUNDS {
                for q in 0..queries.len() {
                    // Offset the query mix per session so the tables keep
                    // displacing each other in the memstore.
                    let text = queries[(s + round + q) % queries.len()];
                    if text.contains("LIMIT") {
                        // Serve LIMIT queries through the streaming cursor:
                        // partitions stop launching once the limit is met.
                        match session.sql_stream(text).and_then(|mut c| c.fetch_all()) {
                            Ok(streamed) => rows += streamed.len(),
                            Err(err) => eprintln!("session {s}: {err}"),
                        }
                    } else {
                        match session.sql(text) {
                            Ok(result) => rows += result.result.rows.len(),
                            Err(err) => eprintln!("session {s}: {err}"),
                        }
                    }
                }
            }
            (session.id(), rows)
        }));
    }
    for worker in workers {
        let (id, rows) = worker.join().expect("worker panicked");
        println!("session {id} finished ({rows} result rows)");
    }

    // Streaming close-up: a full lineitem scan through a prefetching
    // cursor, showing how early the first batch lands relative to the whole
    // result and how many deliveries the worker pool had ready in advance.
    let mut session = server.session();
    session.set_stream_prefetch(4);
    let mut cursor = session.sql_stream("SELECT l_orderkey, l_shipmode FROM lineitem")?;
    let first = cursor.next_batch()?.unwrap_or_default();
    let progress = cursor.progress().clone();
    let rest = cursor.fetch_all()?;
    let done = cursor.progress().clone();
    println!(
        "\nstreamed scan: first batch of {} rows after {:?} ({}/{} partitions); \
         {} rows total, {} prefetch hits",
        first.len(),
        progress.time_to_first_row.unwrap_or_default(),
        progress.partitions_streamed,
        progress.partitions_total,
        first.len() + rest.len(),
        done.prefetch_hits,
    );

    // Top-k close-up: ORDER BY + LIMIT over the statistics-ordered stream
    // executes only as many partitions as the limit needs. (Re-load first:
    // the budget churn above may have evicted lineitem's partitions, and
    // without resident statistics top-k falls back to running every
    // partition.)
    server.load_table("lineitem")?;
    let mut cursor =
        session.sql_stream("SELECT l_orderkey FROM lineitem ORDER BY l_orderkey LIMIT 5")?;
    let top = cursor.next_batch()?.unwrap_or_default();
    let progress = cursor.progress().clone();
    println!(
        "top-k stream: {} rows via {}/{} partitions (per-partition heaps + stat-ordered launch)",
        top.len(),
        progress.partitions_streamed,
        progress.partitions_total,
    );

    // Snapshot-isolation close-up: open a cursor over orders, then DROP and
    // recreate the table mid-stream from another session. The cursor keeps
    // draining the version its snapshot pinned; the dropped version's bytes
    // stay resident (deferred reclamation) until the cursor closes.
    server.load_table("orders")?;
    let ddl = server.session();
    let mut cursor = session.sql_stream("SELECT o_orderkey, o_totalprice FROM orders")?;
    let first = cursor.next_batch()?.unwrap_or_default();
    ddl.sql("DROP TABLE orders")?;
    let deferred_mid_stream = server.deferred_drop_bytes();
    // New queries no longer see the table; the open cursor still does.
    assert!(ddl.sql("SELECT COUNT(*) FROM orders").is_err());
    let rest = cursor.fetch_all()?;
    println!(
        "\nsnapshot isolation: cursor drained {} rows of the dropped orders version \
         (epoch now {}); {} deferred bytes while open, {} after close",
        first.len() + rest.len(),
        server.report().catalog_epoch,
        deferred_mid_stream,
        server.deferred_drop_bytes(),
    );
    register_tpch(&server, &tpch_cfg, partitions); // restore orders for the report

    // Observability close-up: EXPLAIN ANALYZE runs the streamed top-k query
    // under scoped tracing and renders the span tree as per-operator times,
    // rows, partitions, cache hits and lineage rebuilds.
    let analyzed = session
        .sql("EXPLAIN ANALYZE SELECT l_orderkey FROM lineitem ORDER BY l_orderkey LIMIT 5")?;
    println!("\n--- explain analyze ---");
    for row in &analyzed.result.rows {
        println!("{}", row.get(0));
    }

    println!("\n--- server report ---");
    print!("{}", server.report().render());
    // Machine-readable copy on one line, for CI smoke-test assertions.
    println!("SERVER_REPORT_JSON: {}", server.report().to_json());
    Ok(())
}
