//! The SQL → feature extraction → iterative ML pipeline of Listing 1 /
//! §6.5: select data with SQL, extract features with a row-level map, then
//! run logistic regression and k-means on the cached feature RDD.
//!
//! Run with: `cargo run --release -p shark-examples --example ml_pipeline`

use shark_core::datasets::register_ml_points;
use shark_core::{SharkConfig, SharkContext};
use shark_datagen::ml::MlConfig;
use shark_ml::{KMeans, LogisticRegression};

fn main() -> shark_common::Result<()> {
    let shark = SharkContext::new(SharkConfig {
        cluster: shark_core::ClusterConfig::small(16, 4),
        default_partitions: 32,
        sim_scale: 10_000.0, // each in-process point stands for 10k points
        ..SharkConfig::default()
    });
    let ml_cfg = MlConfig {
        rows: 40_000,
        dims: 10,
        clusters: 10,
        seed: 99,
    };
    register_ml_points(&shark, &ml_cfg, 32, true)?;
    shark.load_table("points")?;

    // Step 1 + 2: select the data of interest with SQL and extract features.
    let table = shark.sql_to_rdd("SELECT * FROM points WHERE f0 IS NOT NULL")?;
    println!("feature table schema: {}", table.schema);
    let dims = ml_cfg.dims;
    let labeled = table
        .rdd
        .map(move |row| {
            let label = row.get_float(0).unwrap_or(0.0);
            let features: Vec<f64> = (1..=dims)
                .map(|i| row.get_float(i).unwrap_or(0.0))
                .collect();
            (features, label)
        })
        .cache();

    // Step 3a: logistic regression (10 iterations, as in the paper).
    let (model, lr_report) = LogisticRegression::default().train(&labeled)?;
    let accuracy = LogisticRegression::accuracy(&model, &labeled)?;
    println!(
        "logistic regression: {:.3}s simulated per iteration, accuracy {:.1}%",
        lr_report.mean_iteration_seconds(),
        accuracy * 100.0
    );

    // Step 3b: k-means over the same cached features.
    let features_only = labeled.map(|(f, _)| f).cache();
    let (kmodel, km_report) = KMeans {
        k: 10,
        iterations: 10,
        reduce_partitions: 16,
    }
    .train(&features_only)?;
    println!(
        "k-means: {:.3}s simulated per iteration, {} centers",
        km_report.mean_iteration_seconds(),
        kmodel.centers.len()
    );

    // The whole pipeline shares one lineage graph: failures anywhere are
    // recoverable, and the per-iteration cost stays flat because the feature
    // RDD is cached (contrast with Hadoop re-reading HDFS every iteration).
    println!(
        "total simulated time for the full pipeline: {:.2}s",
        shark.simulated_time()
    );
    Ok(())
}
