//! The Pavlo et al. benchmark queries (§6.2, Figures 5 and 6) run against
//! both the Shark and Hive emulations, printing simulated runtimes.
//!
//! Run with: `cargo run --release -p shark-examples --example pavlo_benchmark`

use shark_core::datasets::register_pavlo;
use shark_core::{ExecConfig, SharkConfig, SharkContext};
use shark_datagen::pavlo::PavloConfig;

/// The three Pavlo queries (scaled dates for our generator).
const SELECTION: &str = "SELECT pageURL, pageRank FROM rankings WHERE pageRank > 300";
const AGG_FINE: &str = "SELECT sourceIP, SUM(adRevenue) FROM uservisits GROUP BY sourceIP";
const AGG_COARSE: &str =
    "SELECT SUBSTR(sourceIP, 1, 7), SUM(adRevenue) FROM uservisits GROUP BY SUBSTR(sourceIP, 1, 7)";
const JOIN: &str = "SELECT sourceIP, AVG(pageRank), SUM(adRevenue) AS totalRevenue \
     FROM rankings R, uservisits UV \
     WHERE R.pageURL = UV.destURL AND UV.visitDate BETWEEN 10971 AND 10978 \
     GROUP BY UV.sourceIP";

fn run(label: &str, config: SharkConfig, cached: bool) -> shark_common::Result<()> {
    let shark = SharkContext::new(config);
    let cfg = PavloConfig::default();
    register_pavlo(&shark, &cfg, 32, cached)?;
    if cached {
        shark.load_table("rankings")?;
        shark.load_table("uservisits")?;
    }
    println!("== {label} ==");
    for (name, sql) in [
        ("selection", SELECTION),
        ("aggregation (2.5M groups @ paper scale)", AGG_FINE),
        ("aggregation (1K groups)", AGG_COARSE),
        ("join", JOIN),
    ] {
        shark.reset_simulation();
        let r = shark.sql(sql)?;
        println!(
            "  {name:<42} {:>8.2}s simulated   ({} result rows)",
            r.sim_seconds,
            r.rows.len()
        );
        for note in &r.notes {
            println!("      note: {note}");
        }
    }
    println!();
    Ok(())
}

fn main() -> shark_common::Result<()> {
    // Each in-process row stands for ~50k rows of the paper's 100-node
    // dataset, so the simulator sees paper-scale volumes.
    let scale = 50_000.0;
    run(
        "Shark (in-memory columnar store)",
        SharkConfig::paper_shark().with_sim_scale(scale),
        true,
    )?;
    run(
        "Shark (disk)",
        SharkConfig::paper_shark()
            .with_sim_scale(scale)
            .with_exec(ExecConfig::shark_disk()),
        false,
    )?;
    run(
        "Hive",
        SharkConfig::paper_hive().with_sim_scale(scale),
        false,
    )?;
    println!(
        "Expected shape (paper, Figure 5/6): Shark beats Hive by 1-2 orders of\n\
         magnitude on selection/aggregation; on the join, memory vs disk matters\n\
         less because the shuffle dominates, and co-partitioning helps most."
    );
    Ok(())
}
