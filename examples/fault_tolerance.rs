//! Mid-query fault tolerance (§2.3, §6.3.3, Figure 9): load a table into the
//! memstore, kill a worker, and watch the next query recover the lost
//! partitions through lineage instead of reloading the whole dataset.
//!
//! Run with: `cargo run --release -p shark-examples --example fault_tolerance`

use shark_core::datasets::register_tpch;
use shark_core::{SharkConfig, SharkContext};
use shark_datagen::tpch::TpchConfig;

const QUERY: &str =
    "SELECT l_shipmode, COUNT(*), SUM(l_extendedprice) FROM lineitem GROUP BY l_shipmode";

fn main() -> shark_common::Result<()> {
    // The paper's failure experiment uses a 50-node cluster (§6.3.3).
    let mut cluster = shark_core::ClusterConfig::paper_shark_cluster();
    cluster.num_nodes = 50;
    let shark = SharkContext::new(SharkConfig {
        cluster,
        default_partitions: 100,
        sim_scale: 20_000.0,
        ..SharkConfig::default()
    });
    register_tpch(&shark, &TpchConfig::default(), 100, true)?;

    // Full load of the lineitem table into the memstore.
    shark.reset_simulation();
    let load = shark.load_table("lineitem")?;
    println!(
        "full load: {:.1}s simulated ({} rows, {} columnar bytes)",
        load.sim_seconds, load.rows, load.stored_bytes
    );

    // Query with no failures.
    shark.reset_simulation();
    let healthy = shark.sql(QUERY)?;
    println!("no failures:      {:.2}s simulated", healthy.sim_seconds);

    // Kill one worker: its memstore partitions disappear.
    let lost = shark.fail_node(7);
    println!("killed node 7 ({lost} cached partitions lost)");

    // The same query now recomputes the lost partitions from the base data
    // (lineage) as part of its scan, on the surviving 49 nodes.
    shark.reset_simulation();
    let with_failure = shark.sql(QUERY)?;
    println!(
        "single failure:   {:.2}s simulated",
        with_failure.sim_seconds
    );

    // After recovery the partitions are cached again; the next query is back
    // to normal speed.
    shark.reset_simulation();
    let post_recovery = shark.sql(QUERY)?;
    println!(
        "post-recovery:    {:.2}s simulated",
        post_recovery.sim_seconds
    );

    assert_eq!(healthy.rows.len(), with_failure.rows.len());
    assert_eq!(healthy.rows.len(), post_recovery.rows.len());
    println!(
        "\nresults identical across runs ({} groups); recovery cost {:.2}s vs a full\n\
         reload at {:.1}s — the Figure 9 shape.",
        healthy.rows.len(),
        with_failure.sim_seconds - healthy.sim_seconds,
        load.sim_seconds
    );
    Ok(())
}
