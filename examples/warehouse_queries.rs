//! The "real Hive warehouse" workload (§6.4, Figure 10): four analytical
//! queries over a clustered video-session fact table, showing map pruning
//! and sub-second (simulated) latencies on the Shark engine.
//!
//! Run with: `cargo run --release -p shark-examples --example warehouse_queries`

use shark_core::datasets::register_warehouse;
use shark_core::{SharkConfig, SharkContext};
use shark_datagen::warehouse::WarehouseConfig;

fn queries() -> Vec<(&'static str, String)> {
    vec![
        (
            "Q1: per-customer daily summary (12 metrics in the paper)",
            "SELECT customer_id, COUNT(*), AVG(buffering_ms), AVG(startup_ms), AVG(bitrate_kbps), \
             SUM(play_seconds), SUM(errors) \
             FROM sessions WHERE day = 15003 AND customer_id = 7 GROUP BY customer_id"
                .to_string(),
        ),
        (
            "Q2: sessions and distinct customers by country (filtered)",
            "SELECT country, COUNT(*), COUNT(DISTINCT customer_id) FROM sessions \
             WHERE is_live = false AND errors = 0 AND rebuffer_count <= 10 AND play_seconds > 60 \
             GROUP BY country"
                .to_string(),
        ),
        (
            "Q3: sessions and users outside two countries",
            "SELECT country, COUNT(*), COUNT(DISTINCT customer_id) FROM sessions \
             WHERE country NOT IN ('US', 'CA') GROUP BY country"
                .to_string(),
        ),
        (
            "Q4: top devices by quality score",
            "SELECT device, COUNT(*), AVG(quality_score), AVG(bitrate_kbps) FROM sessions \
             GROUP BY device ORDER BY 3 DESC LIMIT 10"
                .to_string(),
        ),
    ]
}

fn main() -> shark_common::Result<()> {
    let shark = SharkContext::new(SharkConfig {
        cluster: shark_core::ClusterConfig::paper_shark_cluster(),
        default_partitions: 240,
        // 1.7 TB / 30 days of data scaled down to the in-process generator.
        sim_scale: 30_000.0,
        ..SharkConfig::default()
    });
    register_warehouse(&shark, &WarehouseConfig::default(), true)?;
    let load = shark.load_table("sessions")?;
    println!(
        "loaded sessions fact table: {} rows, {} columnar bytes, {:.1}s simulated\n",
        load.rows, load.stored_bytes, load.sim_seconds
    );

    for (name, sql) in queries() {
        shark.reset_simulation();
        let r = shark.sql(&sql)?;
        println!("{name}");
        println!(
            "  {:.3}s simulated, {} result rows",
            r.sim_seconds,
            r.rows.len()
        );
        for note in r.notes.iter().filter(|n| n.contains("pruning")) {
            println!("  {note}");
        }
        for row in r.rows.iter().take(3) {
            println!("    {}", row.render());
        }
        println!();
    }
    println!(
        "Q1 touches a single (day, customer) slice, so map pruning removes most\n\
         partitions — the effect behind the paper's ~30x scan reduction (§3.5)."
    );
    Ok(())
}
