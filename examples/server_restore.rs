//! Durability round-trip: populate a cached table, demote it to the spill
//! tier, `shutdown()` the server (final WAL commit + checkpoint), then
//! `restore_with` a second server from the same directory — the catalog
//! comes back at the same epoch, every spill frame is re-adopted, and the
//! verification query is answered through promotions (I/O), not lineage
//! recompute. The process then prints the human report plus a
//! `SERVER_REPORT_JSON:` line whose recovery gauges CI asserts on.
//!
//! Run with: `cargo run --release -p shark-examples --example server_restore`
//! The durable directory defaults to a per-process temp dir; set
//! `SHARK_RESTORE_DIR` to choose one (it is created if missing).

use std::path::PathBuf;
use std::sync::Arc;

use shark_common::{row, DataType, Row, Schema};
use shark_server::{ServerConfig, SharkServer, TableRecord};
use shark_sql::{RowGenerator, TableMeta};

const PARTITIONS: usize = 8;
const ROWS_PER_PARTITION: usize = 512;
const SEED: u64 = 0x7e57_ab1e_5a1e_5eed;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The seeded sales generator — a plain `fn`, so the restore resolver can
/// re-attach *the same* lineage the first incarnation registered.
fn sales_rows(p: usize) -> Vec<Row> {
    let mut rng = SEED ^ (p as u64).wrapping_mul(0xd134_2543_de82_ef95);
    (0..ROWS_PER_PARTITION)
        .map(|i| {
            let r = splitmix(&mut rng);
            row![
                (p * ROWS_PER_PARTITION + i) as i64,
                ["emea", "apac", "amer"][(r % 3) as usize],
                (r % 100_000) as f64 / 100.0
            ]
        })
        .collect()
}

fn sales_meta() -> TableMeta {
    let schema = Schema::from_pairs(&[
        ("id", DataType::Int),
        ("region", DataType::Str),
        ("amount", DataType::Float),
    ]);
    TableMeta::new("sales", schema, PARTITIONS, sales_rows)
        .with_cache(PARTITIONS)
        .with_row_count_hint((PARTITIONS * ROWS_PER_PARTITION) as u64)
}

fn resolve(record: &TableRecord) -> Option<RowGenerator> {
    (record.name == "sales").then(|| Arc::new(sales_rows) as RowGenerator)
}

const VERIFY: &str =
    "SELECT region, COUNT(*), SUM(amount), MIN(id), MAX(amount) FROM sales GROUP BY region ORDER BY region";

fn main() -> shark_common::Result<()> {
    let dir = std::env::var_os("SHARK_RESTORE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            std::env::temp_dir().join(format!("shark-restore-{}", std::process::id()))
        });
    let config = || ServerConfig::default().with_spill_dir(&dir);

    // ----- Incarnation 1: populate, demote, shut down -------------------
    let expected = {
        let server = SharkServer::new(config());
        server.register_table(sales_meta());
        server.load_table("sales")?;
        let session = server.session();
        let expected = session.sql(VERIFY)?.result.rows;
        let report = server.report();
        println!(
            "incarnation 1: {} rows loaded over {PARTITIONS} partitions, epoch {}, {} WAL records",
            PARTITIONS * ROWS_PER_PARTITION,
            report.catalog_epoch,
            report.wal_records,
        );
        server.shutdown()?;
        println!("shutdown: partitions demoted and checkpoint written under {dir:?}");
        expected
    };

    // ----- Incarnation 2: restore and verify ----------------------------
    let server = SharkServer::restore_with(config(), resolve)?;
    let session = server.session();
    let restored = session.sql(VERIFY)?.result.rows;
    assert_eq!(
        restored, expected,
        "restored query result must be byte-identical"
    );
    println!("incarnation 2: verification query byte-identical after restore");

    let report = server.report();
    assert!(report.restored);
    assert!(report.recovery_frames_adopted > 0);
    assert_eq!(report.partition_rebuilds, 0, "adopted frames must promote");
    print!("{}", report.render());
    // Stable machine-readable line for scripts/CI (jq-friendly).
    println!("SERVER_REPORT_JSON: {}", report.to_json());
    Ok(())
}
